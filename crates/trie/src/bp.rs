//! Balanced-parentheses support: `excess`, `findclose`, `findopen`.
//!
//! The DFUDS tree encoding of the static Wavelet Trie (§3, [Benoit et al.])
//! needs matching-parenthesis navigation. The paper assumes O(1) operations
//! via Four-Russians tables; we implement the standard engineered
//! alternative — a range-min (rmM) tree over 512-bit blocks with broadword
//! in-block scans, giving O(log n) worst case and one-block scans in
//! practice (DESIGN.md substitutions #1/#6/#9 discussion).
//!
//! In-block scans are fully word-level: 64 bits are consumed per step, a
//! popcount gate skips words that cannot contain the sought excess level,
//! and the hit word is resolved with the table-free SWAR parenthesis
//! ladder of [`wt_bits::broadword::ExcessWord`] — no byte tables, no bit
//! loops.
//!
//! Convention: bit `1` is `'('` (+1), bit `0` is `')'` (−1);
//! `excess(i)` is the sum over `[0, i)`.

use wt_bits::broadword::{min_prefix_excess, pad_open_above, word_excess, ExcessWord};
use wt_bits::persist::{LoadError, Persist, WordsReader};
use wt_bits::words::Words;
use wt_bits::{BitAccess, BitRank, Fid, RawBitVec};

/// Bits per rmM leaf block (a multiple of 64 so blocks are word-aligned).
/// 512 balances the first-block scan (≤ 8 word ladders) against rmM tree
/// depth; 1024/2048 measured slower on navigation-heavy shapes because the
/// in-block scan grows faster than the tree shrinks.
const BLOCK: usize = 512;

/// One rmM segment-tree node, packed so a climb step touches one cache
/// line instead of three parallel arrays. `i32` is ample: excesses are
/// bounded by the sequence length, and 2³¹ parentheses would dwarf every
/// other structure first.
#[derive(Clone, Copy, Debug)]
struct RmmNode {
    /// Total excess of the range.
    tot: i32,
    /// Min prefix excess (over non-empty prefixes) relative to range start;
    /// `i32::MAX` marks an empty (padding) node.
    min: i32,
    /// Max prefix excess; `i32::MIN` when empty. Together with `min` this
    /// makes the backward reachability test exact (suffix δ-sums of a range
    /// span exactly `[tot − max(0, max), tot − min(0, min)]`), so
    /// `bwd_search` never descends into a block that cannot contain its hit.
    max: i32,
}

const RMM_EMPTY: RmmNode = RmmNode {
    tot: 0,
    min: i32::MAX,
    max: i32::MIN,
};

/// The rmM tree packed as `i32` triples `(tot, min, max)` two-per-word in
/// [`Words`] storage — 12 bytes per node like the struct array it replaces,
/// but relocatable, so a loaded tree is a view into the archive buffer.
#[derive(Clone, Debug, Default)]
struct RmmDir {
    words: Words,
    len: usize,
}

impl RmmDir {
    fn from_nodes(nodes: &[RmmNode]) -> Self {
        let n_i32 = nodes.len() * 3;
        let mut words = vec![0u64; n_i32.div_ceil(2)];
        for (k, n) in nodes.iter().enumerate() {
            for (j, v) in [n.tot, n.min, n.max].into_iter().enumerate() {
                let idx = 3 * k + j;
                words[idx / 2] |= ((v as u32) as u64) << (32 * (idx % 2));
            }
        }
        RmmDir {
            words: words.into(),
            len: nodes.len(),
        }
    }

    #[inline]
    fn i32_at(&self, idx: usize) -> i32 {
        (self.words[idx / 2] >> (32 * (idx % 2))) as u32 as i32
    }

    /// Node `k`; the three halves live in at most two adjacent words.
    #[inline]
    fn get(&self, k: usize) -> RmmNode {
        debug_assert!(k < self.len);
        RmmNode {
            tot: self.i32_at(3 * k),
            min: self.i32_at(3 * k + 1),
            max: self.i32_at(3 * k + 2),
        }
    }
}

/// Balanced-parentheses bitvector with rank/select and matching navigation.
#[derive(Clone, Debug)]
pub struct BpSupport {
    bits: Fid,
    /// Number of rmM leaves (power of two ≥ number of blocks).
    leaves: usize,
    /// rmM segment tree, 1-indexed.
    rmm: RmmDir,
}

impl BpSupport {
    /// Builds the support over a parentheses sequence.
    pub fn new(bits: RawBitVec) -> Self {
        let n_blocks = bits.len().div_ceil(BLOCK).max(1);
        let leaves = n_blocks.next_power_of_two();
        let mut rmm = vec![RMM_EMPTY; 2 * leaves];
        for b in 0..n_blocks {
            rmm[leaves + b] = Self::block_summary(&bits, b);
        }
        for k in (1..leaves).rev() {
            let (l, r) = (rmm[2 * k], rmm[2 * k + 1]);
            rmm[k] = RmmNode {
                tot: l.tot + r.tot,
                min: l.min.min(if r.min == i32::MAX {
                    i32::MAX
                } else {
                    l.tot + r.min
                }),
                max: l.max.max(if r.max == i32::MIN {
                    i32::MIN
                } else {
                    l.tot + r.max
                }),
            };
        }
        BpSupport {
            bits: Fid::new(bits),
            leaves,
            rmm: RmmDir::from_nodes(&rmm),
        }
    }

    /// Bits the rmM directory occupies (for space accounting).
    pub fn directory_bits(&self) -> usize {
        self.rmm.words.size_bits() + 64
    }

    fn block_summary(bits: &RawBitVec, b: usize) -> RmmNode {
        let start = b * BLOCK;
        let end = (start + BLOCK).min(bits.len());
        let words = bits.words();
        let mut run = 0i32;
        let mut min = i32::MAX;
        let mut max = i32::MIN;
        let mut i = start;
        while i < end {
            let span = (end - i).min(64);
            // `start` is word-aligned (BLOCK % 64 == 0); '(' padding leaves
            // both the valid-prefix minima and the popcount of ')' intact.
            // The max side mirrors through the complement: max prefix
            // excess of w = −(min prefix excess of !w).
            let chunk = words[i / 64];
            min = min.min(run + min_prefix_excess(pad_open_above(chunk, span)));
            max = max.max(run - min_prefix_excess(pad_open_above(!chunk, span)));
            run += word_excess(pad_open_above(chunk, span)) - (64 - span) as i32;
            i += span;
        }
        RmmNode { tot: run, min, max }
    }

    /// The underlying FID (for rank/select on the parentheses).
    #[inline]
    pub fn fid(&self) -> &Fid {
        &self.bits
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// `true` iff position `i` is `'('`.
    #[inline]
    pub fn is_open(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// `excess(i)`: (#open − #close) in `[0, i)`.
    #[inline]
    pub fn excess(&self, i: usize) -> i64 {
        2 * self.bits.rank1(i) as i64 - i as i64
    }

    /// Position of the `')'` matching the `'('` at `i`.
    ///
    /// # Panics
    /// If `i` is not `'('`. Returns `None` if unmatched (unbalanced input).
    pub fn find_close(&self, i: usize) -> Option<usize> {
        assert!(self.is_open(i), "find_close on a ')' at {i}");
        // Smallest j > i with running excess (starting +1 after consuming i)
        // hitting 0, i.e. fwd search from i+1 with running=1, target=0.
        self.fwd_search(i + 1, 1, 0)
    }

    /// Position of the `'('` matching the `')'` at `i`.
    ///
    /// # Panics
    /// If `i` is not `')'`. Returns `None` if unmatched.
    pub fn find_open(&self, i: usize) -> Option<usize> {
        assert!(!self.is_open(i), "find_open on a '(' at {i}");
        if i == 0 {
            return None;
        }
        // Largest j < i with excess(j) == excess(i+1); scan backward with
        // running = excess(j) − excess(i+1), starting at +1 for j = i.
        self.bwd_search(i, 1, 0)
    }

    /// Forward search: smallest `j >= from` such that `running` + the δ-sum
    /// over `[from..=j]` equals `target`. `running` is the excess already
    /// accumulated relative to the search origin.
    fn fwd_search(&self, from: usize, mut running: i64, target: i64) -> Option<usize> {
        let n = self.len();
        if from >= n {
            return None;
        }
        let first_block = from / BLOCK;
        // 1. Scan the remainder of the starting block.
        let block_end = ((first_block + 1) * BLOCK).min(n);
        match self.fwd_scan(from, block_end, running, target) {
            Ok(j) => return Some(j),
            Err(r) => running = r,
        }
        // 2. Climb the rmM tree for the first reachable block to the right.
        let mut node = self.leaves + first_block;
        loop {
            // Climb while `node` is a right child (one shift: right-child
            // chains are trailing one bits); stop at a left child whose
            // right sibling is the next unexamined subtree.
            node >>= node.trailing_ones();
            if node <= 1 {
                return None;
            }
            node += 1; // right sibling
            let s = self.rmm.get(node);
            if s.min != i32::MAX && running + s.min as i64 <= target {
                // Descend to the leftmost reachable leaf.
                while node < self.leaves {
                    let l = 2 * node;
                    let ls = self.rmm.get(l);
                    if ls.min != i32::MAX && running + ls.min as i64 <= target {
                        node = l;
                    } else {
                        running += ls.tot as i64;
                        node = l + 1;
                    }
                }
                let b = node - self.leaves;
                let start = b * BLOCK;
                let end = (start + BLOCK).min(n);
                match self.fwd_scan(start, end, running, target) {
                    Ok(j) => return Some(j),
                    Err(r) => running = r, // conservative test overshot; continue
                }
            } else {
                running += s.tot as i64;
            }
        }
    }

    /// Scans `[from, to)` forward; `Ok(j)` when the running excess hits
    /// `target` after consuming `j`, else `Err(final_running)`.
    ///
    /// Every caller searches *downward* (`running > target`), so the hit is
    /// the `d`-th unmatched `')'` for `d = running − target`; each 64-bit
    /// chunk is first gated by its `')'` count and only a chunk that can
    /// contain the hit pays for the SWAR ladder.
    fn fwd_scan(&self, from: usize, to: usize, running: i64, target: i64) -> Result<usize, i64> {
        debug_assert!(running > target, "fwd_scan searches downward");
        let mut d = running - target;
        let words = self.bits.raw().words();
        let mut i = from;
        // Near-hit fast path: most DFUDS navigation matches within a few
        // bits (leaf children, adjacent siblings), where a short bit scan
        // beats building the ladder.
        let near_end = to.min(from + 8);
        while i < near_end {
            d += if (words[i / 64] >> (i % 64)) & 1 != 0 {
                1
            } else {
                -1
            };
            if d == 0 {
                return Ok(i);
            }
            i += 1;
        }
        while i < to {
            let off = i % 64;
            let span = (to - i).min(64 - off);
            let chunk = pad_open_above(words[i / 64] >> off, span);
            let ones = chunk.count_ones() as i64;
            if d <= 64 - ones {
                if let Some(p) = ExcessWord::new(chunk).find_fwd_excess(d as u32) {
                    return Ok(i + p as usize);
                }
            }
            // No hit: advance past the chunk's `span` valid bits. The new
            // deficit stays ≥ 1 — dropping to 0 would itself be a hit.
            d += 2 * ones - 64 - (64 - span) as i64;
            i += span;
        }
        Err(target + d)
    }

    /// Backward search: largest `j < from` such that `running` minus the
    /// δ-sum over `[j..from)` equals `target` **at position j** (i.e. the
    /// running value after un-consuming bits down to and including `j`).
    fn bwd_search(&self, from: usize, mut running: i64, target: i64) -> Option<usize> {
        if from == 0 {
            return None;
        }
        let first_block = from.saturating_sub(1) / BLOCK;
        let block_start = first_block * BLOCK;
        match self.bwd_scan(block_start, from, running, target) {
            Ok(j) => return Some(j),
            Err(r) => running = r,
        }
        let mut node = self.leaves + first_block;
        loop {
            // Climb while `node` is a left child (trailing zero bits).
            node >>= node.trailing_zeros().min(63);
            if node <= 1 {
                return None;
            }
            // left sibling
            node -= 1;
            // Backward reachability, exact: scanning the range right-to-left
            // from running value R visits R − σ(j) for the suffix δ-sums
            // σ(j), which (±1 steps) cover exactly
            // [tot − max(0, max-prefix), tot − min(0, min-prefix)].
            let reach = |s: RmmNode, running: i64| {
                s.min != i32::MAX
                    && running - s.tot as i64 + (s.min as i64).min(0) <= target
                    && running - s.tot as i64 + (s.max as i64).max(0) >= target
            };
            let s = self.rmm.get(node);
            if reach(s, running) {
                while node < self.leaves {
                    let r = 2 * node + 1;
                    let rs = self.rmm.get(r);
                    if reach(rs, running) {
                        node = r;
                    } else {
                        running -= rs.tot as i64;
                        node *= 2;
                    }
                }
                let b = node - self.leaves;
                let start = b * BLOCK;
                let end = ((b + 1) * BLOCK).min(self.len());
                match self.bwd_scan(start, end, running, target) {
                    Ok(j) => return Some(j),
                    Err(r) => running = r,
                }
            } else {
                running -= s.tot as i64;
            }
        }
    }

    /// Scans `[from, to)` backward; `Ok(j)` when the running value after
    /// un-consuming bit `j` equals `target`, else `Err(final_running)`.
    ///
    /// Every caller searches downward (`running > target`), i.e. the hit is
    /// the largest `j` whose suffix δ-sum over `[j, to)` equals
    /// `d = running − target` — the `d`-th unmatched `'('` from the top.
    /// Chunks are aligned so their top valid bit sits at bit 63 and the
    /// low side is padded with `')'` (which cannot add unmatched openers).
    fn bwd_scan(&self, from: usize, to: usize, running: i64, target: i64) -> Result<usize, i64> {
        debug_assert!(running > target, "bwd_scan searches downward");
        let mut d = running - target;
        let words = self.bits.raw().words();
        let mut ce = to;
        // Near-hit fast path mirroring `fwd_scan`.
        let near_end = from.max(to.saturating_sub(8));
        while ce > near_end {
            let j = ce - 1;
            d -= if (words[j / 64] >> (j % 64)) & 1 != 0 {
                1
            } else {
                -1
            };
            if d == 0 {
                return Ok(j);
            }
            ce = j;
        }
        while ce > from {
            let w_idx = (ce - 1) / 64;
            let cs = from.max(w_idx * 64);
            let len = ce - cs;
            let shl = 63 - ((ce - 1) % 64);
            let chunk = (words[w_idx] << shl) & (!0u64 << (64 - len));
            let ones = chunk.count_ones() as i64;
            if d <= ones {
                if let Some(p) = ExcessWord::new(chunk).find_bwd_excess(d as u32) {
                    return Ok(cs + (p as usize - (64 - len)));
                }
            }
            // δ-sum of the len valid bits; each padding ')' contributed −1.
            d -= 2 * ones - 64 + (64 - len) as i64;
            ce = cs;
        }
        Err(target + d)
    }
}

impl Persist for BpSupport {
    fn encode(&self, out: &mut Vec<u64>) {
        self.bits.encode(out);
        out.push(self.leaves as u64);
        out.push(self.rmm.len as u64);
        self.rmm.words.encode(out);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let bits = Fid::decode(r)?;
        let leaves = r.read_len()?;
        let len = r.read_len()?;
        let words = Words::decode(r)?;
        let n_blocks = bits.len().div_ceil(BLOCK).max(1);
        if leaves != n_blocks.next_power_of_two() || len != 2 * leaves {
            return Err(LoadError::Invalid("rmM tree shape"));
        }
        if words.len() != (3 * len).div_ceil(2) {
            return Err(LoadError::Invalid("rmM directory length"));
        }
        Ok(BpSupport {
            bits,
            leaves,
            rmm: RmmDir { words, len },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_close(bits: &RawBitVec, i: usize) -> Option<usize> {
        let mut depth = 0i64;
        for j in i..bits.len() {
            depth += if bits.get(j) { 1 } else { -1 };
            if depth == 0 {
                return Some(j);
            }
        }
        None
    }

    fn naive_open(bits: &RawBitVec, i: usize) -> Option<usize> {
        let mut depth = 0i64;
        for j in (0..=i).rev() {
            depth += if bits.get(j) { -1 } else { 1 };
            if depth == 0 {
                return Some(j);
            }
        }
        None
    }

    fn check_all(bits: &RawBitVec) {
        let bp = BpSupport::new(bits.clone());
        for i in 0..bits.len() {
            if bits.get(i) {
                assert_eq!(bp.find_close(i), naive_close(bits, i), "find_close({i})");
            } else {
                assert_eq!(bp.find_open(i), naive_open(bits, i), "find_open({i})");
            }
        }
        for i in 0..=bits.len() {
            let naive = 2 * bits.rank1_scan(i) as i64 - i as i64;
            assert_eq!(bp.excess(i), naive, "excess({i})");
        }
    }

    /// Random balanced sequence via random tree walk.
    fn random_balanced(n_pairs: usize, seed: u64) -> RawBitVec {
        let mut s = seed;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut bits = RawBitVec::new();
        let mut open = 0usize;
        let mut remaining = n_pairs;
        while remaining > 0 || open > 0 {
            let can_open = remaining > 0;
            let can_close = open > 0;
            let do_open = can_open && (!can_close || next() % 2 == 0);
            if do_open {
                bits.push(true);
                open += 1;
                remaining -= 1;
            } else {
                bits.push(false);
                open -= 1;
            }
        }
        bits
    }

    #[test]
    fn simple_sequences() {
        check_all(&RawBitVec::from_bit_str("10"));
        check_all(&RawBitVec::from_bit_str("1100"));
        check_all(&RawBitVec::from_bit_str("110100"));
        check_all(&RawBitVec::from_bit_str("11101000110100"));
    }

    #[test]
    fn deep_nesting_crosses_blocks() {
        // ((((...))))  with depth 2000: matches are ~4000 bits apart.
        let mut bits = RawBitVec::new();
        for _ in 0..2000 {
            bits.push(true);
        }
        for _ in 0..2000 {
            bits.push(false);
        }
        let bp = BpSupport::new(bits.clone());
        assert_eq!(bp.find_close(0), Some(3999));
        assert_eq!(bp.find_close(1999), Some(2000));
        assert_eq!(bp.find_open(3999), Some(0));
        assert_eq!(bp.find_open(2000), Some(1999));
        check_all(&bits);
    }

    #[test]
    fn flat_sequence() {
        // ()()()...(): matches always adjacent.
        let bits = RawBitVec::from_bits((0..4000).map(|i| i % 2 == 0));
        check_all(&bits);
    }

    #[test]
    fn random_balanced_sequences() {
        for seed in 1..6u64 {
            let bits = random_balanced(1500, seed * 7919);
            check_all(&bits);
        }
    }

    #[test]
    fn unbalanced_returns_none() {
        let bits = RawBitVec::from_bit_str("111");
        let bp = BpSupport::new(bits);
        assert_eq!(bp.find_close(0), None);
        let bits = RawBitVec::from_bit_str("000");
        let bp = BpSupport::new(bits);
        assert_eq!(bp.find_open(2), None);
    }

    #[test]
    fn block_boundary_sizes() {
        for n_pairs in [255usize, 256, 257, 511, 512, 513] {
            let bits = random_balanced(n_pairs, n_pairs as u64 + 3);
            check_all(&bits);
        }
    }
}
