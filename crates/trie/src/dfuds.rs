//! DFUDS succinct ordinal tree encoding [Benoit–Demaine–Munro–Raman–Raman–
//! Rao], used by the static Wavelet Trie (§3: "We represent the trie using a
//! DFUDS encoding, which encodes a tree with k nodes in 2k + o(k) bits").
//!
//! Layout: a virtual opening parenthesis, then for each node in preorder its
//! degree `d` written as `d` opens followed by one close. A node is
//! identified by the position of the first symbol of its encoding.
//!
//! The paper additionally converts the binary trie to first-child/next-
//! sibling form to halve the node count; we encode the binary trie directly
//! (2 extra bits per distinct string, same asymptotics — DESIGN.md
//! substitution #6).

use crate::bp::BpSupport;
use wt_bits::persist::{LoadError, Persist, WordsReader};
use wt_bits::words::U32Words;
use wt_bits::{BitRank, BitSelect, RawBitVec, SpaceUsage};

/// A static ordinal tree with succinct navigation.
#[derive(Clone, Debug)]
pub struct Dfuds {
    bp: BpSupport,
    n_nodes: usize,
    /// Second-child skip directory: for the `j`-th node (preorder) with
    /// degree ≥ 1, the position of its child 1 (0 for degree-1 nodes,
    /// which have none). Turns the one genuinely expensive descent step —
    /// `child(v, 1)`'s balanced-parenthesis excursion over the whole first
    /// subtree — into a single prefetchable O(1) load, at 32 bits per
    /// internal node (a few percent of a large Wavelet Trie). Built only
    /// for encodings past [`CHILD1_DIR_MIN_BITS`] — smaller trees are
    /// cache-resident, where the rmM excursion is cheap and the directory
    /// would dominate the tree's own space — and only while positions fit
    /// `u32`; callers fall back to the BP excursion when absent.
    child1: U32Words,
}

/// BP size (bits) from which [`Dfuds`] builds the second-child directory.
/// 2^16 bits ≈ 21k internal nodes: below this the whole parenthesis
/// sequence fits in L1/L2 and `find_close` is compute-cheap.
pub const CHILD1_DIR_MIN_BITS: usize = 1 << 16;

/// Handle to a DFUDS node: the position of its first encoding symbol.
pub type NodeId = usize;

/// Builds the second-child directory from the preorder degree sequence:
/// a reverse scan computes subtree node counts, so child 1 of node `m` is
/// the node at preorder `m + 1 + |subtree(child 0)|`.
fn build_child1_dir(degs: &[u32], total_bits: usize) -> Vec<u32> {
    if !(CHILD1_DIR_MIN_BITS..=u32::MAX as usize).contains(&total_bits) {
        return Vec::new();
    }
    let n = degs.len();
    let mut pos = Vec::with_capacity(n);
    let mut p = 1u64;
    for &d in degs {
        pos.push(p as u32);
        p += d as u64 + 1;
    }
    let mut sub = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    for m in (0..n).rev() {
        let mut s = 1u32;
        for _ in 0..degs[m] {
            s += stack.pop().expect("degree sequence is consistent");
        }
        sub[m] = s;
        stack.push(s);
    }
    let mut dir = Vec::with_capacity(degs.iter().filter(|&&d| d >= 1).count());
    for (m, &d) in degs.iter().enumerate() {
        if d >= 1 {
            let after = m + 1 + sub[m + 1] as usize;
            dir.push(if d >= 2 { pos[after] } else { 0 });
        }
    }
    dir
}

impl Dfuds {
    /// Builds from the preorder degree sequence of the tree.
    ///
    /// An empty iterator yields an empty tree.
    pub fn from_degrees<I: IntoIterator<Item = usize>>(degrees: I) -> Self {
        let degs: Vec<u32> = degrees.into_iter().map(|d| d as u32).collect();
        let mut bits = RawBitVec::new();
        bits.push(true); // virtual root parenthesis
        for &d in &degs {
            for _ in 0..d {
                bits.push(true);
            }
            bits.push(false);
        }
        let n_nodes = degs.len();
        if n_nodes == 0 {
            bits.clear();
        }
        let child1 = build_child1_dir(&degs, bits.len());
        Dfuds {
            bp: BpSupport::new(bits),
            n_nodes,
            child1: U32Words::from_vec(child1),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Whether the tree has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_nodes == 0
    }

    /// The root node, if any.
    #[inline]
    pub fn root(&self) -> Option<NodeId> {
        (self.n_nodes > 0).then_some(1)
    }

    /// Hints the CPU towards the BP words and rank directory entries the
    /// next navigation step at `v` will touch (`preorder`, `is_leaf`,
    /// `degree` all start from `v`'s bit position). Batched descents issue
    /// this for every lane before resolving any.
    #[inline]
    pub fn prefetch_node(&self, v: NodeId) {
        self.bp.fid().prefetch(v);
    }

    /// Preorder rank of `v` (root = 0).
    #[inline]
    pub fn preorder(&self, v: NodeId) -> usize {
        // Every earlier node contributed exactly one ')' before position v.
        self.bp.fid().rank0(v)
    }

    /// Node with preorder rank `i`.
    #[inline]
    pub fn by_preorder(&self, i: usize) -> NodeId {
        assert!(i < self.n_nodes, "preorder {i} out of range");
        if i == 0 {
            1
        } else {
            self.bp.fid().select0(i - 1).expect("preorder in range") + 1
        }
    }

    /// Degree (number of children) of `v`.
    ///
    /// `v`'s encoding is `degree` opens followed by one close, so the
    /// degree is the distance to the first `')'` at or after `v`. A direct
    /// two-word scan resolves it without touching the select directory when
    /// the close lies within 65–128 bits of `v` (depending on `v`'s word
    /// offset) — always, for wavelet-trie shaped binary tries; larger
    /// fan-outs fall back to the `(preorder(v))`-th-zero select.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let words = self.bp.fid().raw().words();
        let mut w_idx = v / 64;
        let mut inv = !words[w_idx] & (!0u64 << (v % 64));
        for _ in 0..2 {
            if inv != 0 {
                // The close exists within the sequence, so the scan cannot
                // land on the zero padding past `len`.
                return w_idx * 64 + inv.trailing_zeros() as usize - v;
            }
            w_idx += 1;
            match words.get(w_idx) {
                Some(&w) => inv = !w,
                None => break,
            }
        }
        let close = self
            .bp
            .fid()
            .select0(self.preorder(v))
            .expect("node close exists");
        close - v
    }

    /// Whether `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        !self.bp.is_open(v)
    }

    /// Position of child 1 of the `j`-th internal node — `j` being the
    /// node's preorder rank among nodes with degree ≥ 1, which the static
    /// Wavelet Trie already computes for its bitvector directories. O(1)
    /// via the skip directory; `None` when the directory is unavailable
    /// (callers fall back to [`Dfuds::child`]).
    ///
    /// The result is meaningful only for nodes of degree ≥ 2.
    #[inline]
    pub fn child1_by_internal_rank(&self, j: usize) -> Option<NodeId> {
        self.child1.get_opt(j).map(|p| p as usize)
    }

    /// Hints the CPU towards the `j`-th skip-directory entry.
    #[inline]
    pub fn prefetch_child1(&self, j: usize) {
        self.child1.prefetch(j);
    }

    /// The `i`-th (0-based) child of `v`.
    ///
    /// # Panics
    /// If `i >= degree(v)`.
    #[inline]
    pub fn child(&self, v: NodeId, i: usize) -> NodeId {
        let d = self.degree(v);
        assert!(i < d, "child index {i} out of range (degree {d})");
        self.bp
            .find_close(v + d - 1 - i)
            .expect("DFUDS is balanced")
            + 1
    }

    /// Node whose encoding contains the `'('` at `q` (one of its child
    /// slots) — the shared back half of `parent` / `child_index`.
    fn node_of_open(&self, q: usize) -> NodeId {
        let pre = self.bp.fid().rank0(q);
        if pre == 0 {
            1
        } else {
            self.bp.fid().select0(pre - 1).expect("in range") + 1
        }
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if v == 1 {
            return None;
        }
        let q = self.bp.find_open(v - 1).expect("DFUDS is balanced");
        Some(self.node_of_open(q))
    }

    /// Which child of its parent `v` is (0-based), or `None` for the root.
    pub fn child_index(&self, v: NodeId) -> Option<usize> {
        if v == 1 {
            return None;
        }
        // Resolve the backward match once and reuse it for both the parent
        // node and the child-slot arithmetic.
        let q = self.bp.find_open(v - 1).expect("DFUDS is balanced");
        let parent = self.node_of_open(q);
        Some(parent + self.degree(parent) - 1 - q)
    }

    /// Iterates node ids in preorder.
    pub fn preorder_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes).map(move |i| self.by_preorder(i))
    }
}

impl SpaceUsage for Dfuds {
    fn size_bits(&self) -> usize {
        // BP bits + its Fid directory + rmM tree + the second-child skip
        // directory, plus our node counter.
        self.bp.fid().size_bits() + self.bp.directory_bits() + self.child1.size_bits() + 64
    }
}

impl Persist for Dfuds {
    fn encode(&self, out: &mut Vec<u64>) {
        self.bp.encode(out);
        out.push(self.n_nodes as u64);
        self.child1.encode(out);
    }

    fn decode(r: &mut WordsReader) -> Result<Self, LoadError> {
        let bp = BpSupport::decode(r)?;
        let n_nodes = r.read_len()?;
        let child1 = U32Words::decode(r)?;
        // 1 virtual-root '(' + per node its opens and one ')': the bit
        // count pins the node count (each node past the root contributes
        // its own ')' and its parent slot's '(').
        if n_nodes == 0 {
            if !bp.is_empty() {
                return Err(LoadError::Invalid("dfuds empty-tree encoding"));
            }
        } else if bp.len() != 2 * n_nodes {
            return Err(LoadError::Invalid("dfuds bit count vs node count"));
        }
        // The skip directory exists exactly for the size window the
        // builder uses; its entries are bounded by the encoding length.
        if !child1.is_empty() {
            if !(CHILD1_DIR_MIN_BITS..=u32::MAX as usize).contains(&bp.len()) {
                return Err(LoadError::Invalid("dfuds unexpected skip directory"));
            }
            for j in 0..child1.len() {
                if child1.get(j) as usize >= bp.len() {
                    return Err(LoadError::Invalid("dfuds skip entry out of range"));
                }
            }
        }
        Ok(Dfuds {
            bp,
            n_nodes,
            child1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pointer-based reference tree.
    struct RefTree {
        children: Vec<Vec<usize>>, // preorder ids
        parent: Vec<Option<usize>>,
    }

    impl RefTree {
        /// Builds a pseudorandom tree with `n` nodes; returns preorder degrees.
        fn random(n: usize, seed: u64, max_children: usize) -> (Self, Vec<usize>) {
            let mut s = seed;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            // Generate children counts by DFS so the degree sequence is preorder.
            let mut children = vec![Vec::new(); n];
            let mut parent = vec![None; n];
            let mut degrees = Vec::with_capacity(n);
            let mut next_id = 1usize;
            let mut stack = vec![0usize];
            let mut order = Vec::new();
            while let Some(v) = stack.pop() {
                order.push(v);
                let remaining = n - next_id;
                let d = if remaining == 0 {
                    0
                } else {
                    (next() as usize % (max_children + 1)).min(remaining)
                };
                let kids: Vec<usize> = (0..d).map(|k| next_id + k).collect();
                next_id += d;
                for &c in &kids {
                    parent[c] = Some(v);
                }
                children[v] = kids.clone();
                // DFS: push in reverse so leftmost is visited first.
                for &c in kids.iter().rev() {
                    stack.push(c);
                }
                degrees.push(d);
            }
            // If we never placed all n nodes (tree ended early), attach the
            // rest as a chain under the last ordered node.
            assert_eq!(order.len(), degrees.len());
            if next_id < n {
                // chain remaining under node order.last
                let mut at = *order.last().unwrap();
                while next_id < n {
                    children[at].push(next_id);
                    parent[next_id] = Some(at);
                    at = next_id;
                    next_id += 1;
                }
                // recompute preorder degrees
                let mut degrees2 = Vec::with_capacity(n);
                let mut stack = vec![0usize];
                let mut order2 = Vec::new();
                while let Some(v) = stack.pop() {
                    order2.push(v);
                    degrees2.push(children[v].len());
                    for &c in children[v].iter().rev() {
                        stack.push(c);
                    }
                }
                // remap ids to preorder
                let mut pos = vec![0usize; n];
                for (i, &v) in order2.iter().enumerate() {
                    pos[v] = i;
                }
                let mut children2 = vec![Vec::new(); n];
                let mut parent2 = vec![None; n];
                for v in 0..n {
                    children2[pos[v]] = children[v].iter().map(|&c| pos[c]).collect();
                    parent2[pos[v]] = parent[v].map(|p| pos[p]);
                }
                return (
                    RefTree {
                        children: children2,
                        parent: parent2,
                    },
                    degrees2,
                );
            }
            // remap ids to preorder positions
            let mut pos = vec![0usize; n];
            for (i, &v) in order.iter().enumerate() {
                pos[v] = i;
            }
            let mut children2 = vec![Vec::new(); n];
            let mut parent2 = vec![None; n];
            for v in 0..n {
                children2[pos[v]] = children[v].iter().map(|&c| pos[c]).collect();
                parent2[pos[v]] = parent[v].map(|p| pos[p]);
            }
            (
                RefTree {
                    children: children2,
                    parent: parent2,
                },
                degrees,
            )
        }
    }

    fn check_tree(r: &RefTree, degrees: &[usize]) {
        let t = Dfuds::from_degrees(degrees.iter().copied());
        let n = degrees.len();
        assert_eq!(t.n_nodes(), n);
        // preorder ids must be a bijection consistent with by_preorder.
        for i in 0..n {
            let v = t.by_preorder(i);
            assert_eq!(t.preorder(v), i, "preorder roundtrip {i}");
            assert_eq!(t.degree(v), r.children[i].len(), "degree of {i}");
            assert_eq!(t.is_leaf(v), r.children[i].is_empty());
            for (k, &c) in r.children[i].iter().enumerate() {
                let cv = t.child(v, k);
                assert_eq!(t.preorder(cv), c, "child {k} of {i}");
                assert_eq!(t.parent(cv), Some(v), "parent of {c}");
                assert_eq!(t.child_index(cv), Some(k), "child_index of {c}");
            }
            match r.parent[i] {
                None => assert_eq!(t.parent(v), None),
                Some(p) => assert_eq!(t.parent(v).map(|pv| t.preorder(pv)), Some(p)),
            }
        }
    }

    #[test]
    fn single_node() {
        let t = Dfuds::from_degrees([0usize]);
        let root = t.root().unwrap();
        assert!(t.is_leaf(root));
        assert_eq!(t.degree(root), 0);
        assert_eq!(t.parent(root), None);
        assert_eq!(t.preorder(root), 0);
    }

    #[test]
    fn empty_tree() {
        let t = Dfuds::from_degrees(std::iter::empty());
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
    }

    #[test]
    fn paper_figure2_shape() {
        // Figure 2 trie: root(2) -> [internal(2) -> [leaf, internal(2) ->
        // [leaf, leaf]], internal(2) -> [leaf, leaf]]  — 4 internal + ...
        // Preorder degrees of the binary trie with 4 internal nodes, 5 leaves:
        let degrees = [2usize, 2, 0, 2, 0, 0, 2, 0, 0];
        let t = Dfuds::from_degrees(degrees);
        let root = t.root().unwrap();
        assert_eq!(t.degree(root), 2);
        let l = t.child(root, 0);
        let r = t.child(root, 1);
        assert_eq!(t.preorder(l), 1);
        assert_eq!(t.preorder(r), 6);
        assert!(t.is_leaf(t.child(l, 0)));
        assert_eq!(t.preorder(t.child(l, 1)), 3);
        assert!(t.is_leaf(t.child(r, 0)));
        assert!(t.is_leaf(t.child(r, 1)));
    }

    #[test]
    fn binary_chain() {
        // Left-leaning binary chain of 100 internal nodes.
        let mut degrees = Vec::new();
        for _ in 0..100 {
            degrees.push(2);
            degrees.push(0); // right leaf... (preorder: internal, then left subtree)
        }
        // Fix: preorder for left-chain: internal, internal, ..., then leaves.
        // Build properly with the reference generator instead:
        let _ = degrees;
        let (r, degrees) = RefTree::random(201, 42, 1); // chain-ish
        check_tree(&r, &degrees);
    }

    #[test]
    fn random_trees() {
        for (n, seed, fanout) in [
            (1usize, 7u64, 3usize),
            (2, 11, 2),
            (10, 13, 3),
            (100, 17, 4),
            (1000, 19, 2),
            (5000, 23, 5),
        ] {
            let (r, degrees) = RefTree::random(n, seed, fanout);
            check_tree(&r, &degrees);
        }
    }

    #[test]
    fn huge_fanout_uses_select_fallback() {
        // Root with 299 leaf children: degree > 128 crosses the two-word
        // scan window and must fall back to the select directory.
        let n = 300usize;
        let mut degrees = vec![n - 1];
        degrees.extend(std::iter::repeat_n(0, n - 1));
        let t = Dfuds::from_degrees(degrees.iter().copied());
        let root = t.root().unwrap();
        assert_eq!(t.degree(root), n - 1);
        for k in (0..n - 1).step_by(37) {
            let c = t.child(root, k);
            assert!(t.is_leaf(c));
            assert_eq!(t.degree(c), 0);
            assert_eq!(t.parent(c), Some(root));
            assert_eq!(t.child_index(c), Some(k));
        }
    }

    #[test]
    fn child1_directory_matches_bp() {
        // Above the size gate: every degree-≥2 node's directory entry must
        // equal the BP answer.
        for (n, seed, fanout) in [(40_000usize, 7u64, 3usize), (50_000, 17, 4)] {
            let (_, degrees) = RefTree::random(n, seed, fanout);
            let t = Dfuds::from_degrees(degrees.iter().copied());
            let mut j = 0usize;
            let mut checked = 0usize;
            for i in 0..n {
                let v = t.by_preorder(i);
                let d = t.degree(v);
                if d >= 2 && i % 11 == 0 {
                    assert_eq!(
                        t.child1_by_internal_rank(j),
                        Some(t.child(v, 1)),
                        "internal {j} (preorder {i})"
                    );
                    checked += 1;
                }
                j += (d >= 1) as usize;
            }
            assert!(checked > 100, "directory should be present and exercised");
        }
        // Below the gate the directory is absent; callers fall back to BP.
        let (_, degrees) = RefTree::random(500, 3, 2);
        let t = Dfuds::from_degrees(degrees.iter().copied());
        assert_eq!(t.child1_by_internal_rank(0), None);
    }

    #[test]
    fn preorder_iter_visits_all() {
        let (_, degrees) = RefTree::random(500, 3, 3);
        let t = Dfuds::from_degrees(degrees.iter().copied());
        let ids: Vec<usize> = t.preorder_iter().map(|v| t.preorder(v)).collect();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }
}
