//! Model-based BP navigation suite on deep, skewed parenthesis strings —
//! the shapes where the word-level fwd/bwd excess scans must climb the rmM
//! tree far and land exactly: deep nesting (matches tens of thousands of
//! bits apart), skewed combs, long flat runs crossing rmM leaves, and
//! word/block boundary alignments. Everything is mirrored against naive
//! linear scans.

use wt_bits::RawBitVec;
use wt_trie::BpSupport;

fn naive_close(bits: &RawBitVec, i: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in i..bits.len() {
        depth += if bits.get(j) { 1 } else { -1 };
        if depth == 0 {
            return Some(j);
        }
    }
    None
}

fn naive_open(bits: &RawBitVec, i: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in (0..=i).rev() {
        depth += if bits.get(j) { -1 } else { 1 };
        if depth == 0 {
            return Some(j);
        }
    }
    None
}

/// Checks every position when the input is small, or a boundary-focused
/// sample when it is large.
fn check(bits: &RawBitVec) {
    let bp = BpSupport::new(bits.clone());
    let n = bits.len();
    let probes: Vec<usize> = if n <= 4000 {
        (0..n).collect()
    } else {
        let mut p: Vec<usize> = (0..n).step_by(509).collect();
        // word, rmM-block and endpoint alignments
        for base in (0..n).step_by(512) {
            for d in [0usize, 1, 62, 63, 64, 65, 510, 511] {
                if base + d < n {
                    p.push(base + d);
                }
            }
        }
        p.extend([n - 2, n - 1]);
        p.sort_unstable();
        p.dedup();
        p
    };
    for &i in &probes {
        if bits.get(i) {
            assert_eq!(bp.find_close(i), naive_close(bits, i), "find_close({i})");
        } else {
            assert_eq!(bp.find_open(i), naive_open(bits, i), "find_open({i})");
        }
    }
}

fn deep_nest(depth: usize) -> RawBitVec {
    let mut bits = RawBitVec::with_capacity(2 * depth);
    for _ in 0..depth {
        bits.push(true);
    }
    for _ in 0..depth {
        bits.push(false);
    }
    bits
}

/// `(()(()(… ` — a right-leaning comb: every close matches a near open but
/// the outermost spans the whole string.
fn skewed_comb(pairs: usize) -> RawBitVec {
    let mut bits = RawBitVec::new();
    for _ in 0..pairs {
        bits.push(true);
        bits.push(true);
        bits.push(false);
    }
    for _ in 0..pairs {
        bits.push(false);
    }
    bits
}

/// Biased random walk: stays balanced but wanders to depth ~sqrt(n).
fn wandering(pairs: usize, seed: u64, bias: u64) -> RawBitVec {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut bits = RawBitVec::new();
    let mut open = 0usize;
    let mut remaining = pairs;
    while remaining > 0 || open > 0 {
        let can_open = remaining > 0;
        let can_close = open > 0;
        let do_open = can_open && (!can_close || next() % 100 < bias);
        if do_open {
            bits.push(true);
            open += 1;
            remaining -= 1;
        } else {
            bits.push(false);
            open -= 1;
        }
    }
    bits
}

#[test]
fn deep_nesting_far_matches() {
    // Matches up to 131072 bits apart: full rmM climbs and descents.
    for depth in [512usize, 513, 8191, 8192, 65_536] {
        let bits = deep_nest(depth);
        let bp = BpSupport::new(bits.clone());
        assert_eq!(bp.find_close(0), Some(2 * depth - 1));
        assert_eq!(bp.find_open(2 * depth - 1), Some(0));
        assert_eq!(bp.find_close(depth - 1), Some(depth));
        assert_eq!(bp.find_open(depth), Some(depth - 1));
        // sampled cross-checks against naive
        for i in (0..depth).step_by(depth / 7 + 1) {
            assert_eq!(
                bp.find_close(i),
                naive_close(&bits, i),
                "depth {depth} i {i}"
            );
            assert_eq!(
                bp.find_open(2 * depth - 1 - i),
                naive_open(&bits, 2 * depth - 1 - i)
            );
        }
    }
}

#[test]
fn skewed_combs() {
    for pairs in [100usize, 1000, 20_000] {
        check(&skewed_comb(pairs));
    }
}

#[test]
fn wandering_walks() {
    for (pairs, seed, bias) in [(1000usize, 3u64, 50u64), (30_000, 5, 80), (30_000, 9, 95)] {
        check(&wandering(pairs, seed, bias));
    }
}

#[test]
fn flat_runs_cross_blocks() {
    // ()()()… : every match adjacent, but scans start at every alignment.
    check(&RawBitVec::from_bits((0..10_000).map(|i| i % 2 == 0)));
    // (())(())… : matches 1–3 bits away.
    check(&RawBitVec::from_bits((0..10_000).map(|i| i % 4 < 2)));
}

#[test]
fn unbalanced_tails_return_none() {
    // Excess never returns: deep unmatched prefixes and suffixes.
    let mut bits = RawBitVec::filled(true, 2000);
    bits.push(false);
    let bp = BpSupport::new(bits);
    assert_eq!(bp.find_close(0), None);
    assert_eq!(bp.find_close(1998), None);
    assert_eq!(bp.find_close(1999), Some(2000));

    let mut bits = RawBitVec::filled(false, 2000);
    bits.push(true);
    let bp = BpSupport::new(bits);
    assert_eq!(bp.find_open(1999), None);
    assert_eq!(bp.find_close(2000), None);
}

#[test]
fn boundary_lengths() {
    // Lengths straddling word and rmM-block boundaries.
    for pairs in [31usize, 32, 33, 255, 256, 257, 511, 512, 513] {
        check(&deep_nest(pairs));
        check(&wandering(pairs, pairs as u64 + 1, 60));
    }
}
