//! "Approach (1)" of the paper's Related Work: map strings to integers
//! through a dictionary and store the integer sequence in a Wavelet Tree.
//!
//! This exhibits exactly the two issues §1 names:
//! * **(a) frozen alphabet** — the Wavelet Tree's shape depends on the
//!   alphabet size, so appending a *previously unseen* string forces a full
//!   rebuild (counted in [`DictSequence::rebuilds`]; measured in E9);
//! * **(b) lost string structure** — the integer mapping destroys prefixes,
//!   so `RankPrefix`/`SelectPrefix` are unsupported.

use crate::int_wavelet_tree::IntWaveletTree;
use std::collections::HashMap;
use wt_bits::SpaceUsage;

/// Dictionary-mapped sequence over an integer Wavelet Tree.
#[derive(Clone, Debug)]
pub struct DictSequence {
    dict: HashMap<Vec<u8>, u64>,
    symbols: Vec<Vec<u8>>,
    ids: Vec<u64>,
    tree: IntWaveletTree,
    rebuilds: usize,
}

impl Default for DictSequence {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds from an iterator (single construction, no rebuild counting).
impl<S: AsRef<[u8]>> FromIterator<S> for DictSequence {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut d = Self::new();
        let mut pending: Vec<u64> = Vec::new();
        for s in iter {
            let id = d.intern(s.as_ref());
            pending.push(id);
        }
        d.ids = pending;
        d.rebuild();
        d.rebuilds = 0;
        d
    }
}

impl DictSequence {
    /// Empty sequence.
    pub fn new() -> Self {
        DictSequence {
            dict: HashMap::new(),
            symbols: Vec::new(),
            ids: Vec::new(),
            tree: IntWaveletTree::new(&[], 1),
            rebuilds: 0,
        }
    }

    fn intern(&mut self, s: &[u8]) -> u64 {
        if let Some(&id) = self.dict.get(s) {
            return id;
        }
        let id = self.symbols.len() as u64;
        self.dict.insert(s.to_vec(), id);
        self.symbols.push(s.to_vec());
        id
    }

    fn rebuild(&mut self) {
        let sigma = self.symbols.len().max(1) as u64;
        self.tree = IntWaveletTree::new(&self.ids, sigma);
        self.rebuilds += 1;
    }

    /// Appends `s`. A previously unseen string grows the alphabet and
    /// triggers a **full rebuild** — the cost the Wavelet Trie avoids.
    pub fn push(&mut self, s: impl AsRef<[u8]>) {
        let before = self.symbols.len();
        let id = self.intern(s.as_ref());
        self.ids.push(id);
        if self.symbols.len() != before {
            self.rebuild();
        } else {
            // Known symbol: a static-alphabet dynamic Wavelet Tree would
            // support this in O(log σ); our static baseline still rebuilds,
            // but we only charge E9 for the alphabet-growth rebuilds.
            self.rebuild();
            self.rebuilds -= 1;
        }
    }

    /// Number of full rebuilds caused by alphabet growth.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Distinct strings.
    pub fn distinct_len(&self) -> usize {
        self.symbols.len()
    }

    /// `Access(pos)`.
    pub fn get(&self, pos: usize) -> &[u8] {
        &self.symbols[self.tree.access(pos) as usize]
    }

    /// `Rank(s, pos)`.
    pub fn rank(&self, s: impl AsRef<[u8]>, pos: usize) -> usize {
        match self.dict.get(s.as_ref()) {
            Some(&id) => self.tree.rank(id, pos),
            None => 0,
        }
    }

    /// `Select(s, idx)`.
    pub fn select(&self, s: impl AsRef<[u8]>, idx: usize) -> Option<usize> {
        self.dict
            .get(s.as_ref())
            .and_then(|&id| self.tree.select(id, idx))
    }

    /// Occurrences of `s`.
    pub fn count(&self, s: impl AsRef<[u8]>) -> usize {
        self.rank(s, self.len())
    }

    // RankPrefix / SelectPrefix deliberately absent: issue (b).
}

impl SpaceUsage for DictSequence {
    fn size_bits(&self) -> usize {
        let dict_bits: usize = self
            .dict
            .keys()
            .map(|k| k.capacity() * 8 + 128)
            .sum::<usize>()
            + self
                .symbols
                .iter()
                .map(|s| s.capacity() * 8 + 192)
                .sum::<usize>();
        dict_bits + self.ids.capacity() * 64 + self.tree.size_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive() {
        let strs = ["a", "b", "a", "c", "b", "a"];
        let d = DictSequence::from_iter(strs);
        assert_eq!(d.len(), 6);
        assert_eq!(d.distinct_len(), 3);
        for (i, s) in strs.iter().enumerate() {
            assert_eq!(d.get(i), s.as_bytes(), "access({i})");
        }
        assert_eq!(d.rank("a", 6), 3);
        assert_eq!(d.rank("a", 3), 2);
        assert_eq!(d.select("b", 1), Some(4));
        assert_eq!(d.select("z", 0), None);
        assert_eq!(d.count("c"), 1);
    }

    #[test]
    fn unseen_appends_rebuild() {
        let mut d = DictSequence::new();
        d.push("x");
        d.push("y");
        d.push("x"); // seen: no alphabet growth
        d.push("z");
        assert_eq!(d.rebuilds(), 3, "one rebuild per unseen string");
        assert_eq!(d.len(), 4);
        assert_eq!(d.count("x"), 2);
        assert_eq!(d.get(3), b"z");
    }
}
