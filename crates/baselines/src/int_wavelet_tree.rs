//! The classic balanced Wavelet Tree [Grossi–Gupta–Vitter'03] over a
//! *fixed integer alphabet* (§2 of the paper) — the structure the Wavelet
//! Trie generalizes, and the core of the "approach (1)" baseline: it cannot
//! change its alphabet after construction and knows nothing about prefixes.

use wt_bits::{BitAccess, BitRank, BitSelect, Fid, RawBitVec, SpaceUsage};

/// A pointer-based balanced Wavelet Tree over `{0, …, sigma−1}`.
#[derive(Clone, Debug)]
pub struct IntWaveletTree {
    /// Bitvectors level by level, one per internal node, in BFS order kept
    /// as a flat binary heap layout (node 1 = root; children 2v, 2v+1).
    nodes: Vec<Option<Fid>>,
    sigma: u64,
    /// Bits needed to write a symbol (tree height).
    width: u32,
    len: usize,
}

impl IntWaveletTree {
    /// Builds over `seq`, whose symbols must all be `< sigma`.
    ///
    /// # Panics
    /// If a symbol is out of range or `sigma == 0`.
    pub fn new(seq: &[u64], sigma: u64) -> Self {
        assert!(sigma > 0, "alphabet must be nonempty");
        let width = if sigma <= 1 {
            1
        } else {
            64 - (sigma - 1).leading_zeros()
        };
        let n_nodes = 1usize << width; // heap positions 1..2^width
        let mut nodes: Vec<Option<RawBitVec>> = vec![None; n_nodes];
        // Distribute symbols top-down, one level at a time.
        let mut buckets: Vec<(usize, Vec<u64>)> = vec![(1, seq.to_vec())];
        for level in 0..width {
            let shift = width - 1 - level;
            let mut next = Vec::new();
            for (node, vals) in buckets {
                if vals.is_empty() {
                    continue;
                }
                let mut bv = RawBitVec::with_capacity(vals.len());
                let mut zeros = Vec::new();
                let mut ones = Vec::new();
                for &v in &vals {
                    assert!(v < sigma, "symbol {v} out of alphabet {sigma}");
                    let bit = (v >> shift) & 1 != 0;
                    bv.push(bit);
                    if bit {
                        ones.push(v);
                    } else {
                        zeros.push(v);
                    }
                }
                nodes[node] = Some(bv);
                if level + 1 < width {
                    next.push((2 * node, zeros));
                    next.push((2 * node + 1, ones));
                }
            }
            buckets = next;
        }
        IntWaveletTree {
            nodes: nodes.into_iter().map(|o| o.map(Fid::new)).collect(),
            sigma,
            width,
            len: seq.len(),
        }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Alphabet size the tree was built for.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// `Access(pos)`.
    pub fn access(&self, pos: usize) -> u64 {
        assert!(pos < self.len, "position out of bounds");
        let mut node = 1usize;
        let mut p = pos;
        let mut v = 0u64;
        for _ in 0..self.width {
            let bv = self.nodes[node].as_ref().expect("path exists");
            let bit = bv.get(p);
            v = (v << 1) | bit as u64;
            p = bv.rank(bit, p);
            node = 2 * node + bit as usize;
            if node >= self.nodes.len() {
                break;
            }
        }
        v
    }

    /// `Rank(c, pos)`: occurrences of `c` before `pos`.
    pub fn rank(&self, c: u64, pos: usize) -> usize {
        assert!(pos <= self.len);
        if c >= self.sigma {
            return 0;
        }
        let mut node = 1usize;
        let mut p = pos;
        for level in 0..self.width {
            let bv = match self.nodes.get(node).and_then(|o| o.as_ref()) {
                Some(bv) => bv,
                None => return 0,
            };
            let bit = (c >> (self.width - 1 - level)) & 1 != 0;
            p = bv.rank(bit, p);
            node = 2 * node + bit as usize;
        }
        p
    }

    /// `Select(c, idx)`: position of the `idx`-th occurrence of `c`.
    pub fn select(&self, c: u64, idx: usize) -> Option<usize> {
        if c >= self.sigma {
            return None;
        }
        // Descend to the (virtual) leaf recording the path.
        let mut path = Vec::with_capacity(self.width as usize);
        let mut node = 1usize;
        for level in 0..self.width {
            let _bv = self.nodes.get(node).and_then(|o| o.as_ref())?;
            let bit = (c >> (self.width - 1 - level)) & 1 != 0;
            path.push((node, bit));
            node = 2 * node + bit as usize;
        }
        let mut i = idx;
        for &(node, bit) in path.iter().rev() {
            let bv = self.nodes[node].as_ref().expect("on path");
            i = bv.select(bit, i)?;
        }
        Some(i)
    }

    /// Occurrences of `c` in the whole sequence.
    pub fn count(&self, c: u64) -> usize {
        self.rank(c, self.len)
    }
}

impl SpaceUsage for IntWaveletTree {
    fn size_bits(&self) -> usize {
        self.nodes
            .iter()
            .flatten()
            .map(|f| f.size_bits())
            .sum::<usize>()
            + self.nodes.capacity() * 64
            + 3 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(seq: &[u64], sigma: u64) {
        let wt = IntWaveletTree::new(seq, sigma);
        assert_eq!(wt.len(), seq.len());
        for (i, &v) in seq.iter().enumerate() {
            assert_eq!(wt.access(i), v, "access({i})");
        }
        for c in 0..sigma {
            let occs: Vec<usize> = (0..seq.len()).filter(|&i| seq[i] == c).collect();
            for pos in (0..=seq.len()).step_by((seq.len() / 50).max(1)) {
                let naive = occs.iter().filter(|&&p| p < pos).count();
                assert_eq!(wt.rank(c, pos), naive, "rank({c},{pos})");
            }
            for (k, &p) in occs.iter().enumerate() {
                assert_eq!(wt.select(c, k), Some(p), "select({c},{k})");
            }
            assert_eq!(wt.select(c, occs.len()), None);
        }
    }

    #[test]
    fn abracadabra() {
        // Figure 1 of the paper: a=0 b=1 c=2 d=3 r=4.
        let seq = [0u64, 1, 4, 0, 2, 0, 3, 0, 1, 4, 0];
        check(&seq, 5);
    }

    #[test]
    fn degenerate_alphabets() {
        check(&[0, 0, 0], 1);
        check(&[0, 1, 0, 1], 2);
        check(&[], 4);
        check(&[3], 4);
    }

    #[test]
    fn pseudorandom() {
        let mut s = 777u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let seq: Vec<u64> = (0..5000).map(|_| next() % 100).collect();
        check(&seq, 100);
        let seq: Vec<u64> = (0..1000).map(|_| next() % 3).collect();
        check(&seq, 3);
    }
}
