//! # wt-baselines — the comparators of the Wavelet Trie paper
//!
//! Everything the paper positions itself against (§1 "Related work"):
//!
//! * [`NaiveSeq`] — plain `Vec` with linear scans (ground truth + E7
//!   baseline).
//! * [`IntWaveletTree`] — the classic fixed-alphabet balanced Wavelet Tree
//!   \[13\] the Wavelet Trie generalizes.
//! * [`DictSequence`] — approach (1): dictionary-mapped integers; rebuilds
//!   on alphabet growth (issue (a)), no prefix queries (issue (b)).
//! * [`BTreeIndex`] — approach (3): sorted `(s, i)` dictionary + full
//!   uncompressed copy; no compression guarantee.
//!
//! Approach (2) (compressed full-text index over the concatenation) is a
//! documented omission — see DESIGN.md.

pub mod btree_index;
pub mod dict_sequence;
pub mod int_wavelet_tree;
pub mod naive;

pub use btree_index::BTreeIndex;
pub use dict_sequence::DictSequence;
pub use int_wavelet_tree::IntWaveletTree;
pub use naive::NaiveSeq;
