//! Naive uncompressed indexed sequence: `Vec` of strings with linear-scan
//! queries. Ground truth for every equivalence test and the baseline the §5
//! range algorithms are measured against (experiment E7).

/// A plain `Vec<Vec<u8>>` sequence answering every operation by scanning.
#[derive(Clone, Debug, Default)]
pub struct NaiveSeq {
    data: Vec<Vec<u8>>,
}

impl<S: AsRef<[u8]>> FromIterator<S> for NaiveSeq {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        NaiveSeq {
            data: iter.into_iter().map(|s| s.as_ref().to_vec()).collect(),
        }
    }
}

impl NaiveSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Inserts before `pos`.
    pub fn insert(&mut self, s: impl AsRef<[u8]>, pos: usize) {
        self.data.insert(pos, s.as_ref().to_vec());
    }

    /// Appends.
    pub fn push(&mut self, s: impl AsRef<[u8]>) {
        self.data.push(s.as_ref().to_vec());
    }

    /// Removes and returns the string at `pos`.
    pub fn remove(&mut self, pos: usize) -> Vec<u8> {
        self.data.remove(pos)
    }

    /// `Access(pos)`.
    pub fn get(&self, pos: usize) -> &[u8] {
        &self.data[pos]
    }

    /// `Rank(s, pos)` by scanning.
    pub fn rank(&self, s: impl AsRef<[u8]>, pos: usize) -> usize {
        let s = s.as_ref();
        self.data[..pos]
            .iter()
            .filter(|t| t.as_slice() == s)
            .count()
    }

    /// `Select(s, idx)` by scanning.
    pub fn select(&self, s: impl AsRef<[u8]>, idx: usize) -> Option<usize> {
        let s = s.as_ref();
        self.data
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_slice() == s)
            .nth(idx)
            .map(|(i, _)| i)
    }

    /// `RankPrefix(p, pos)` by scanning.
    pub fn rank_prefix(&self, p: impl AsRef<[u8]>, pos: usize) -> usize {
        let p = p.as_ref();
        self.data[..pos].iter().filter(|t| t.starts_with(p)).count()
    }

    /// `SelectPrefix(p, idx)` by scanning.
    pub fn select_prefix(&self, p: impl AsRef<[u8]>, idx: usize) -> Option<usize> {
        let p = p.as_ref();
        self.data
            .iter()
            .enumerate()
            .filter(|(_, t)| t.starts_with(p))
            .nth(idx)
            .map(|(i, _)| i)
    }

    /// Distinct strings with counts in `[l, r)`, lexicographically sorted.
    pub fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(Vec<u8>, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for s in &self.data[l..r] {
            *map.entry(s.clone()).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Majority element of `[l, r)`, if any.
    pub fn range_majority(&self, l: usize, r: usize) -> Option<(Vec<u8>, usize)> {
        self.distinct_in_range(l, r)
            .into_iter()
            .find(|(_, c)| 2 * c > r - l)
    }

    /// Strings with ≥ `min_count` occurrences in `[l, r)`.
    pub fn range_frequent(&self, l: usize, r: usize, min_count: usize) -> Vec<(Vec<u8>, usize)> {
        self.distinct_in_range(l, r)
            .into_iter()
            .filter(|(_, c)| *c >= min_count.max(1))
            .collect()
    }

    /// Heap bits (the uncompressed cost every compressed structure is
    /// compared against).
    pub fn size_bits(&self) -> usize {
        let content: usize = self.data.iter().map(|s| s.capacity() * 8).sum();
        content + self.data.capacity() * (std::mem::size_of::<Vec<u8>>() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = NaiveSeq::from_iter(["a", "b", "a", "c", "ab"]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.rank("a", 5), 2);
        assert_eq!(s.rank("a", 2), 1);
        assert_eq!(s.select("a", 1), Some(2));
        assert_eq!(s.select("a", 2), None);
        assert_eq!(s.rank_prefix("a", 5), 3);
        assert_eq!(s.select_prefix("a", 2), Some(4));
        assert_eq!(s.range_majority(0, 3).unwrap().0, b"a");
        s.insert("a", 0);
        assert_eq!(s.rank("a", 6), 3);
        assert_eq!(s.remove(0), b"a");
        let d = s.distinct_in_range(0, 5);
        assert_eq!(d.len(), 4);
        assert_eq!(s.range_frequent(0, 5, 2).len(), 1);
    }
}
