//! "Approach (3)" of the paper's Related Work: store `(s_i, i)` pairs in a
//! sorted dictionary (a B-Tree in databases; `BTreeMap` here), keeping a
//! full uncompressed copy of the sequence for `Access`.
//!
//! As §1 notes, this supports `Select` (and, with per-key posting lists,
//! `Rank`) but "offers little or no guaranteed compression ratio": the
//! measured space in E4/E9 is a multiple of the input, versus the Wavelet
//! Trie's entropy bound.

use std::collections::BTreeMap;
use wt_bits::SpaceUsage;

/// Traditional two-copy index: a position-ordered copy for `Access` plus a
/// `BTreeMap<string, sorted positions>` for `Rank`/`Select`.
#[derive(Clone, Debug, Default)]
pub struct BTreeIndex {
    seq: Vec<Vec<u8>>,
    postings: BTreeMap<Vec<u8>, Vec<u32>>,
}

impl<S: AsRef<[u8]>> FromIterator<S> for BTreeIndex {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut t = Self::new();
        for s in iter {
            t.push(s);
        }
        t
    }
}

impl BTreeIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `s` (positions only grow, so postings stay sorted).
    pub fn push(&mut self, s: impl AsRef<[u8]>) {
        let pos = self.seq.len() as u32;
        let s = s.as_ref().to_vec();
        self.postings.entry(s.clone()).or_default().push(pos);
        self.seq.push(s);
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Distinct strings.
    pub fn distinct_len(&self) -> usize {
        self.postings.len()
    }

    /// `Access(pos)` — needs the uncompressed copy.
    pub fn get(&self, pos: usize) -> &[u8] {
        &self.seq[pos]
    }

    /// `Rank(s, pos)` via binary search in the posting list.
    pub fn rank(&self, s: impl AsRef<[u8]>, pos: usize) -> usize {
        match self.postings.get(s.as_ref()) {
            Some(v) => v.partition_point(|&p| (p as usize) < pos),
            None => 0,
        }
    }

    /// `Select(s, idx)`.
    pub fn select(&self, s: impl AsRef<[u8]>, idx: usize) -> Option<usize> {
        self.postings
            .get(s.as_ref())
            .and_then(|v| v.get(idx))
            .map(|&p| p as usize)
    }

    /// `RankPrefix(p, pos)`: walks every key with prefix `p`
    /// (O(#matching keys · log n) — no shared-prefix structure to exploit).
    pub fn rank_prefix(&self, p: impl AsRef<[u8]>, pos: usize) -> usize {
        let p = p.as_ref();
        self.prefix_keys(p)
            .map(|(_, v)| v.partition_point(|&q| (q as usize) < pos))
            .sum()
    }

    /// `SelectPrefix(p, idx)` by merging posting lists (O(total postings)).
    pub fn select_prefix(&self, p: impl AsRef<[u8]>, idx: usize) -> Option<usize> {
        let p = p.as_ref();
        let mut positions: Vec<u32> = self
            .prefix_keys(p)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        positions.sort_unstable();
        positions.get(idx).map(|&q| q as usize)
    }

    fn prefix_keys<'a>(
        &'a self,
        p: &'a [u8],
    ) -> impl Iterator<Item = (&'a Vec<u8>, &'a Vec<u32>)> + 'a {
        self.postings
            .range(p.to_vec()..)
            .take_while(move |(k, _)| k.starts_with(p))
    }

    /// Occurrences of `s`.
    pub fn count(&self, s: impl AsRef<[u8]>) -> usize {
        self.postings.get(s.as_ref()).map_or(0, |v| v.len())
    }
}

impl SpaceUsage for BTreeIndex {
    fn size_bits(&self) -> usize {
        let seq_bits: usize = self
            .seq
            .iter()
            .map(|s| s.capacity() * 8 + std::mem::size_of::<Vec<u8>>() * 8)
            .sum();
        let postings_bits: usize = self
            .postings
            .iter()
            .map(|(k, v)| k.capacity() * 8 + v.capacity() * 32 + 3 * 64)
            .sum();
        seq_bits + postings_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive() {
        let strs = ["b.org/y", "a.com/x", "a.com/x", "a.com/z", "c.net/"];
        let t = BTreeIndex::from_iter(strs);
        assert_eq!(t.len(), 5);
        assert_eq!(t.distinct_len(), 4);
        assert_eq!(t.get(1), b"a.com/x");
        assert_eq!(t.rank("a.com/x", 3), 2);
        assert_eq!(t.select("a.com/x", 1), Some(2));
        assert_eq!(t.select("a.com/x", 2), None);
        assert_eq!(t.rank_prefix("a.com/", 5), 3);
        assert_eq!(t.rank_prefix("a.com/", 2), 1);
        assert_eq!(t.select_prefix("a.com/", 2), Some(3));
        assert_eq!(t.select_prefix("nope", 0), None);
        assert_eq!(t.count("c.net/"), 1);
    }

    #[test]
    fn space_is_multiple_of_input() {
        let strs: Vec<String> = (0..500).map(|i| format!("key-{:04}", i % 100)).collect();
        let t = BTreeIndex::from_iter(strs.iter());
        let input_bits: usize = strs.iter().map(|s| s.len() * 8).sum();
        assert!(
            t.size_bits() > input_bits,
            "two copies must exceed the input: {} vs {}",
            t.size_bits(),
            input_bits
        );
    }
}
