//! # wavelet-trie — compressed indexed sequences of strings
//!
//! A from-scratch implementation of *"The Wavelet Trie: Maintaining an
//! Indexed Sequence of Strings in Compressed Space"* (Roberto Grossi,
//! Giuseppe Ottaviano — PODS 2012).
//!
//! An *indexed sequence of strings* stores `S = ⟨s₀, …, s_{n−1}⟩` (order
//! matters, duplicates allowed) and supports `Access`, `Rank`, `Select`,
//! their prefix variants `RankPrefix`/`SelectPrefix`, range analytics
//! (distinct values, majority, top-t), and — in the dynamic variants —
//! `Insert`, `Append` and `Delete` **with a dynamic alphabet**: strings
//! never seen before can arrive at any time, which static-alphabet Wavelet
//! Trees cannot handle (§1, issue (a)).
//!
//! ## The three variants (Table 1 of the paper)
//!
//! | type | update ops | query time | space |
//! |---|---|---|---|
//! | [`WaveletTrie`] (static) | — | O(\|s\| + h_s) | LB + o(h̃n) |
//! | [`AppendWaveletTrie`] | `append` | O(\|s\| + h_s) | LB + PT + o(h̃n) |
//! | [`DynamicWaveletTrie`] | `insert`/`delete` | O(\|s\| + h_s·log n) | LB + PT + O(nH0) |
//!
//! where `LB = LT(Sset) + nH0(S)` is the information-theoretic lower bound
//! (§3) and `h_s` the trie depth of `s`.
//!
//! ## Quick start
//!
//! ```
//! use wavelet_trie::text::AppendLog;
//!
//! let mut log = AppendLog::new();
//! for url in ["a.com/x", "b.org/y", "a.com/z", "a.com/x"] {
//!     log.append(url);
//! }
//! assert_eq!(log.count("a.com/x"), 2);           // Rank over all
//! assert_eq!(log.count_prefix("a.com/"), 3);     // RankPrefix
//! assert_eq!(log.select_prefix("a.com/", 2), Some(3));
//! assert_eq!(log.get_string(1), "b.org/y");      // Access
//! ```
//!
//! Work at the bit level with [`WaveletTrie`]/[`DynamicWaveletTrie`] and
//! [`wt_trie::BitString`] keys (must form a prefix-free set), or at the
//! byte level with the [`text`] wrappers whose [`binarize::NinthBitCoder`]
//! guarantees prefix-freeness and preserves lexicographic order.
//!
//! Numeric sequences over a huge universe get the §6 treatment in
//! [`RandomizedWaveletTree`]: multiplicative hashing keeps the trie height
//! logarithmic in the *working* alphabet with high probability.
//!
//! Queries live on the **object-safe** [`SeqIndex`] trait (so mixed
//! static/dynamic structures fit behind `Box<dyn SeqIndex>`), with
//! [`SequenceOps`] adding the borrowing iterators. The [`convert`] module
//! converts between the variants structurally: [`DynWaveletTrie::freeze`]
//! seals a dynamic trie into the static form with one walk (no
//! re-insertion), [`static_wt::WaveletTrie::thaw`] melts it back — the
//! machinery behind the `wt-store` tiered store.

mod batch;
pub mod binarize;
pub mod convert;
pub mod dyn_wt;
pub mod hashed;
pub mod nav;
pub mod ops;
pub mod pd;
mod pd_batch;
mod pd_scalar;
pub mod range;
pub mod static_wt;
pub mod stats;
pub mod text;

pub use dyn_wt::{AppendWaveletTrie, DynWaveletTrie, DynamicWaveletTrie, WtBitVec, WtBitVecRemove};
pub use hashed::RandomizedWaveletTree;
pub use nav::TrieNav;
pub use ops::{SeqIndex, SequenceOps};
pub use pd::{PathDecompTrie, PdSpaceBreakdown};
pub use range::RangeIter;
pub use static_wt::{StaticSpaceBreakdown, WaveletTrie};
pub use stats::{SequenceStats, TrieShape};
pub use text::{AppendLog, DynamicStrings, IndexedStrings};

// Re-export the substrate types users need for the bit-level API.
pub use wt_trie::{BitStr, BitString, PrefixFreeViolation};
