//! Information-theoretic quantities for sequences of strings (§2/§3 and
//! Appendix A): `nH0(S)`, `LT(Sset)` of Theorem 3.6, the combined lower
//! bound `LB(S) = LT(Sset) + nH0(S)`, and the average height `h̃`
//! (Definition 3.4). These drive the space experiments E4/E10.

use std::collections::HashMap;
use wt_trie::{BitStr, BitString, PatriciaSet};

/// Information-theoretic summary of a sequence of binary strings.
#[derive(Clone, Copy, Debug)]
pub struct SequenceStats {
    /// Sequence length n.
    pub n: usize,
    /// Distinct strings |Sset|.
    pub distinct: usize,
    /// Total input bits Σ|s_i|.
    pub total_input_bits: usize,
    /// `n·H0(S)` in bits.
    pub nh0_bits: f64,
    /// `|L|`: concatenated non-root Patricia labels, bits.
    pub l_bits: usize,
    /// `e = 2(|Sset| − 1)`: trie edges.
    pub e: usize,
    /// `LT(Sset) = |L| + e + B(e, |L| + e)` (Theorem 3.6), bits.
    pub lt_bits: f64,
    /// `LB(S) = LT + nH0`, bits.
    pub lb_bits: f64,
}

impl SequenceStats {
    /// Computes the stats; O(total input bits · log) time.
    ///
    /// Returns `None` if the string set is not prefix-free (the bounds are
    /// defined for prefix-free sets only).
    pub fn from_bitstrings(seq: &[BitString]) -> Option<Self> {
        let n = seq.len();
        let mut counts: HashMap<&BitString, usize> = HashMap::new();
        for s in seq {
            *counts.entry(s).or_insert(0) += 1;
        }
        let distinct = counts.len();
        let nh0_bits: f64 = counts
            .values()
            .map(|&c| c as f64 * (n as f64 / c as f64).log2())
            .sum();
        // Build the Patricia trie of Sset to obtain |L|.
        let mut trie = PatriciaSet::new();
        for s in counts.keys() {
            match trie.insert(s.as_bitstr()) {
                Ok(_) => {}
                Err(_) => return None,
            }
        }
        // label_bits counts every node label including the root; Theorem 3.6
        // concatenates the e non-root labels. Recover the root label length
        // as the LCP of the whole set.
        let root_label = if distinct <= 1 {
            seq.first().map_or(0, |s| s.len())
        } else {
            let mut it = counts.keys();
            let first = it.next().expect("nonempty");
            let mut l = first.len();
            for s in it {
                l = l.min(first.as_bitstr().lcp(&s.as_bitstr()));
            }
            l
        };
        let l_bits = trie.label_bits().saturating_sub(root_label);
        let e = 2 * distinct.saturating_sub(1);
        let lt_bits = if distinct <= 1 {
            l_bits as f64
        } else {
            l_bits as f64 + e as f64 + wt_bits::entropy::binomial_bound_bits(l_bits + e, e)
        };
        let total_input_bits = seq.iter().map(|s| s.len()).sum();
        Some(SequenceStats {
            n,
            distinct,
            total_input_bits,
            nh0_bits,
            l_bits,
            e,
            lt_bits,
            lb_bits: lt_bits + nh0_bits,
        })
    }

    /// `H0(S)` per string (bits).
    pub fn h0_per_string(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.nh0_bits / self.n as f64
        }
    }

    /// Average input string length `Σ|s_i| / n` (bits).
    pub fn avg_input_bits(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_input_bits as f64 / self.n as f64
        }
    }
}

/// Average height `h̃` computed directly from the strings via a Patricia
/// descent per string (Definition 3.4: `h̃ = (1/n)Σ h_{s_i}`).
pub fn average_height_of(seq: &[BitString]) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    // Build a static Wavelet Trie and read h̃ = Σ|β| / n off it.
    use crate::ops::SeqIndex;
    match crate::static_wt::WaveletTrie::build(seq) {
        Ok(wt) => wt.avg_height(),
        Err(_) => f64::NAN,
    }
}

/// Minimum segment length for path decomposition to pay off: below this
/// the whole trie fits in cache and the wavelet trie's pointer chase is
/// free anyway.
pub const PD_MIN_N: usize = 1024;

/// Average-depth threshold for path decomposition, as a fraction of
/// `log2 n`: a trie at least this deep on average is "ints-like" (long
/// dependent miss chains), a shallower one is "url-like" (shared hot top,
/// already cache-friendly).
pub const PD_DEPTH_FACTOR: f64 = 0.8;

/// The adaptive static-representation choice used at seal/compact time by
/// the tiered store: path-decompose iff the segment is big enough, its
/// strings are mostly distinct (at least half — duplication-heavy
/// segments are the grouped batch kernels' best case, and the wavelet
/// trie's lockstep pipeline outruns the decomposition's there), and its
/// occurrence-weighted average depth `h̃` (= `total_bitvector_bits / n`,
/// an O(1) read off a built trie) is a constant fraction of `log2 n`.
/// All three inputs are O(1) reads off the frozen trie's directories.
pub fn prefers_path_decomposition(n: usize, distinct: usize, avg_depth: f64) -> bool {
    n >= PD_MIN_N
        && distinct.saturating_mul(2) >= n
        && avg_depth >= PD_DEPTH_FACTOR * (n as f64).log2()
}

/// Shape summary of a binary trie: the evidence behind the adaptive
/// representation choice, printed by `store_report`.
#[derive(Clone, Debug)]
pub struct TrieShape {
    /// Sequence length n.
    pub n: usize,
    /// Distinct strings (= leaves).
    pub distinct: usize,
    /// Deepest leaf, in internal nodes traversed.
    pub max_depth: usize,
    /// Occurrence-weighted average leaf depth — exactly `h̃` of
    /// Definition 3.4 (`Σ|β_v| / n`).
    pub avg_depth: f64,
    /// `log2 n` (0 for an empty trie), the yardstick for `avg_depth`.
    pub log2n: f64,
    /// Leaves per depth; `depth_hist[d]` counts leaves at depth `d`.
    pub depth_hist: Vec<usize>,
    /// Node counts by fanout `[0, 1, 2]`; compacted binary tries have no
    /// unary nodes, so `fanout[1] == 0`.
    pub fanout: [usize; 3],
}

impl TrieShape {
    /// Whether the seal heuristic would pick the path-decomposed
    /// representation for this shape.
    pub fn prefers_path_decomposition(&self) -> bool {
        prefers_path_decomposition(self.n, self.distinct, self.avg_depth)
    }
}

/// Probes the shape of any navigable trie in one DFS, carrying occurrence
/// counts down via the per-node bitvector ones directories (no string
/// materialization).
pub fn trie_shape<T: crate::nav::TrieNav>(t: &T) -> TrieShape {
    let n = t.nav_len();
    let mut shape = TrieShape {
        n,
        distinct: 0,
        max_depth: 0,
        avg_depth: 0.0,
        log2n: if n > 0 { (n as f64).log2() } else { 0.0 },
        depth_hist: Vec::new(),
        fanout: [0; 3],
    };
    let Some(root) = t.nav_root() else {
        return shape;
    };
    let mut weighted = 0.0f64;
    let mut stack = vec![(root, 0usize, n)];
    while let Some((v, depth, m)) = stack.pop() {
        if t.nav_is_leaf(v) {
            shape.distinct += 1;
            shape.fanout[0] += 1;
            shape.max_depth = shape.max_depth.max(depth);
            if shape.depth_hist.len() <= depth {
                shape.depth_hist.resize(depth + 1, 0);
            }
            shape.depth_hist[depth] += 1;
            weighted += (m * depth) as f64;
        } else {
            shape.fanout[2] += 1;
            let len = t.nav_bv_len(v);
            let ones = t.nav_bv_rank(v, true, len);
            stack.push((t.nav_child(v, false), depth + 1, len - ones));
            stack.push((t.nav_child(v, true), depth + 1, ones));
        }
    }
    shape.avg_depth = if n == 0 { 0.0 } else { weighted / n as f64 };
    shape
}

/// Per-string trie depth `h_s` (internal nodes traversed when searching
/// `s`), computed against a Patricia trie of the distinct set.
pub fn string_depth<T: crate::nav::TrieNav>(t: &T, s: BitStr<'_>) -> Option<usize> {
    let mut v = t.nav_root()?;
    let mut delta = 0usize;
    let mut depth = 0usize;
    loop {
        let l = t.nav_label_lcp(v, s.suffix(delta));
        if l < t.nav_label_len(v) {
            return None;
        }
        delta += l;
        if t.nav_is_leaf(v) {
            return (delta == s.len()).then_some(depth);
        }
        if delta == s.len() {
            return None;
        }
        let b = s.get(delta);
        delta += 1;
        depth += 1;
        v = t.nav_child(v, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    #[test]
    fn figure2_stats() {
        let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
            .iter()
            .map(|s| bs(s))
            .collect();
        let st = SequenceStats::from_bitstrings(&seq).unwrap();
        assert_eq!(st.n, 7);
        assert_eq!(st.distinct, 4);
        assert_eq!(st.e, 6);
        // H0 = -(1/7 log 1/7 + 1/7 ... + 3/7 log 3/7 + 2/7 log 2/7)
        let h0 = st.h0_per_string();
        let expect = (1.0f64 / 7.0) * 7f64.log2() * 2.0
            + (3.0 / 7.0) * (7f64 / 3.0).log2()
            + (2.0 / 7.0) * (7f64 / 2.0).log2();
        assert!((h0 - expect).abs() < 1e-9, "{h0} vs {expect}");
        // Lemma 3.5: H0 <= h̃ <= avg input length
        let h = average_height_of(&seq);
        assert!(h0 <= h + 1e-9);
        assert!(h <= st.avg_input_bits() + 1e-9);
    }

    #[test]
    fn non_prefix_free_detected() {
        let seq = vec![bs("01"), bs("010")];
        assert!(SequenceStats::from_bitstrings(&seq).is_none());
    }

    #[test]
    fn single_string_degenerate() {
        let seq = vec![bs("10101"); 4];
        let st = SequenceStats::from_bitstrings(&seq).unwrap();
        assert_eq!(st.distinct, 1);
        assert_eq!(st.nh0_bits, 0.0);
        assert_eq!(st.e, 0);
        assert_eq!(st.l_bits, 0); // the single label is the root label
    }

    #[test]
    fn trie_shape_figure2() {
        use crate::ops::SeqIndex;
        let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
            .iter()
            .map(|s| bs(s))
            .collect();
        let wt = crate::static_wt::WaveletTrie::build(&seq).unwrap();
        let shape = trie_shape(&wt);
        assert_eq!(shape.n, 7);
        assert_eq!(shape.distinct, 4);
        assert_eq!(shape.max_depth, 3);
        // Leaves: 0100×3 at depth 1, 0001×1 at 2, 0011×1 and 00100×2 at 3.
        assert_eq!(shape.depth_hist, vec![0, 1, 1, 2]);
        assert_eq!(shape.fanout, [4, 0, 3]);
        let expect = (3 + 2 + 3 * 3) as f64 / 7.0;
        assert!((shape.avg_depth - expect).abs() < 1e-9);
        // h̃ from the probe must agree with the O(1) directory read.
        assert!((shape.avg_depth - wt.avg_height()).abs() < 1e-9);
        // The probe is representation-independent.
        let pd = crate::pd::PathDecompTrie::from_static(&wt);
        let ps = trie_shape(&pd);
        assert_eq!(ps.depth_hist, shape.depth_hist);
        assert_eq!(ps.fanout, shape.fanout);
        assert!((ps.avg_depth - shape.avg_depth).abs() < 1e-9);
        // Tiny and shallow: the heuristic keeps the wavelet trie.
        assert!(!shape.prefers_path_decomposition());
    }

    #[test]
    fn adaptive_choice_thresholds() {
        // Deep near-distinct segment: decompose.
        assert!(prefers_path_decomposition(1 << 20, 1 << 20, 20.0));
        // Shallow url-like segment (h̃ ≪ log n): keep the wavelet trie.
        assert!(!prefers_path_decomposition(1 << 20, 1 << 20, 8.0));
        // Deep but duplication-heavy (distinct < n/2): the grouped batch
        // kernels want the wavelet trie's lockstep pipeline.
        assert!(!prefers_path_decomposition(1 << 20, 1 << 18, 20.0));
        // Too small to matter, however deep and distinct.
        assert!(!prefers_path_decomposition(512, 512, 40.0));
    }

    #[test]
    fn string_depth_matches_height() {
        use crate::ops::SeqIndex;
        let seq: Vec<BitString> = ["0001", "0011", "0100", "00100"]
            .iter()
            .map(|s| bs(s))
            .collect();
        let wt = crate::static_wt::WaveletTrie::build(&seq).unwrap();
        // depths: 0001 -> 2 internals (root, left); 0011 -> 3; 00100 -> 3; 0100 -> 1
        assert_eq!(string_depth(&wt, bs("0001").as_bitstr()), Some(2));
        assert_eq!(string_depth(&wt, bs("0011").as_bitstr()), Some(3));
        assert_eq!(string_depth(&wt, bs("00100").as_bitstr()), Some(3));
        assert_eq!(string_depth(&wt, bs("0100").as_bitstr()), Some(1));
        assert_eq!(string_depth(&wt, bs("1111").as_bitstr()), None);
        assert_eq!(wt.height(), 3);
    }
}
