//! Structural conversion between the dynamic and static Wavelet Tries.
//!
//! [`DynWaveletTrie::freeze`] walks the dynamic trie **once** and emits the
//! static representation of Theorem 3.7 directly — preorder DFUDS degrees,
//! the concatenated label bitvector `L`, and the concatenated node
//! bitvectors — without re-inserting the `n` strings through the Patricia
//! trie. Cost is O(total bits) with word-level copies, versus
//! O(Σ|sᵢ| · h) re-descent work plus the partition recursion for a
//! from-scratch rebuild; on string-heavy workloads this is an order of
//! magnitude faster (experiment E13, `BENCH_store.json`).
//!
//! [`WaveletTrie::thaw`] is the inverse: it materializes the pointer-based
//! dynamic node tree from the succinct one, so a sealed segment can be
//! melted for in-place edits or merged with its neighbour during
//! compaction (thaw + append + freeze), again without any per-string trie
//! descent for the thawed side.

use crate::dyn_wt::{DynWaveletTrie, Internal, Node, WtBitVec};
use crate::nav::TrieNav;
use crate::static_wt::{StaticParts, WaveletTrie};
use wt_bits::RawBitVec;
use wt_trie::BitString;

impl<B: WtBitVec> DynWaveletTrie<B> {
    /// Seals this dynamic trie into the static representation
    /// (Theorem 3.7) by a single structural walk: no string is ever
    /// re-emitted or re-inserted.
    ///
    /// Both tries represent the same Definition 3.1 object, so the result
    /// answers every query identically to
    /// `WaveletTrie::from_views(self.iter_seq())` — the tests pin this.
    pub fn freeze(&self) -> WaveletTrie {
        WaveletTrie::assemble(self.freeze_parts())
    }

    /// [`DynWaveletTrie::freeze`] with the succinct assembly spread over
    /// `threads` scoped worker threads (DFUDS, delimiters and the
    /// chunk-parallel RRR encoding run concurrently); the structural walk
    /// itself stays sequential. Bit-identical to the serial freeze — this
    /// is what the tiered store's seal/compact path uses per segment.
    pub fn freeze_with_threads(&self, threads: usize) -> WaveletTrie {
        WaveletTrie::assemble_with_threads(self.freeze_parts(), threads.max(1))
    }

    /// The preorder walk shared by both freeze entry points.
    fn freeze_parts(&self) -> StaticParts {
        let n = self.len;
        let root = match &self.root {
            None => return StaticParts::empty(),
            Some(r) => r,
        };
        let mut degrees: Vec<usize> = Vec::new();
        let mut labels = RawBitVec::new();
        let mut label_lens: Vec<u64> = Vec::new();
        let mut bv_concat = RawBitVec::new();
        let mut bv_lens: Vec<u64> = Vec::new();
        let mut bv_ones: Vec<u64> = Vec::new();
        let mut nh0 = 0.0f64;
        let root_label_len = root.label().len();
        // Preorder DFS; each entry carries the subtree's occurrence count
        // (= parent bitvector ones/zeros), which at a leaf is the count the
        // empirical-entropy term needs.
        let mut stack: Vec<(&Node<B>, usize)> = vec![(root, n)];
        while let Some((node, m)) = stack.pop() {
            let label = node.label();
            label.as_bitstr().append_into(&mut labels);
            label_lens.push(label.len() as u64);
            match node {
                Node::Leaf(_) => {
                    degrees.push(0);
                    let c = m as f64;
                    nh0 += c * (n as f64 / c).log2();
                }
                Node::Internal(int) => {
                    degrees.push(2);
                    let len = int.bv.wt_len();
                    debug_assert_eq!(len, m, "node bitvector length = subtree count");
                    let ones = int.bv.wt_rank(true, len);
                    int.bv.wt_append_into(&mut bv_concat);
                    bv_lens.push(len as u64);
                    bv_ones.push(ones as u64);
                    // Child 0 must pop first (preorder).
                    stack.push((&int.children[1], ones));
                    stack.push((&int.children[0], len - ones));
                }
            }
        }
        StaticParts {
            n,
            degrees,
            labels,
            label_lens,
            bv_concat,
            bv_lens,
            bv_ones,
            nh0_bits: nh0,
            root_label_len,
        }
    }
}

impl WaveletTrie {
    /// Melts this static trie back into a dynamic one, structurally: the
    /// pointer-based node tree is rebuilt from the succinct directories
    /// with one pass over labels and bitvectors, never touching the
    /// string sequence itself.
    pub fn thaw<B: WtBitVec>(&self) -> DynWaveletTrie<B> {
        match self.nav_root() {
            None => DynWaveletTrie::new(),
            Some(root) => DynWaveletTrie {
                root: Some(thaw_rec(self, root)),
                len: self.len(),
            },
        }
    }
}

fn thaw_rec<B: WtBitVec>(wt: &WaveletTrie, v: usize) -> Node<B> {
    let mut label = BitString::new();
    wt.nav_label_append(v, &mut label);
    if wt.nav_is_leaf(v) {
        Node::Leaf(label)
    } else {
        let bv = B::wt_from_iter(wt.bv_bits(v));
        let children = [
            thaw_rec(wt, wt.nav_child(v, false)),
            thaw_rec(wt, wt.nav_child(v, true)),
        ];
        Node::Internal(Box::new(Internal {
            label,
            bv,
            children,
        }))
    }
}

#[cfg(test)]
mod tests {
    use crate::dyn_wt::{AppendWaveletTrie, DynamicWaveletTrie};
    use crate::ops::{SeqIndex, SequenceOps};
    use crate::static_wt::WaveletTrie;
    use wt_trie::BitString;

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    /// Asserts every SeqIndex operation agrees between two indexes.
    fn assert_same_index(a: &dyn SeqIndex, b: &dyn SeqIndex, probes: &[BitString]) {
        let n = a.seq_len();
        assert_eq!(n, b.seq_len());
        assert_eq!(a.distinct_len(), b.distinct_len());
        assert_eq!(a.height(), b.height());
        assert_eq!(a.total_bitvector_bits(), b.total_bitvector_bits());
        for pos in 0..n {
            assert_eq!(a.access(pos), b.access(pos), "access({pos})");
        }
        for s in probes {
            let v = s.as_bitstr();
            assert_eq!(a.count(v), b.count(v), "count({s})");
            for pos in [0, n / 3, n / 2, n] {
                assert_eq!(a.rank(v, pos), b.rank(v, pos), "rank({s},{pos})");
                assert_eq!(
                    a.rank_prefix(v, pos),
                    b.rank_prefix(v, pos),
                    "rank_prefix({s},{pos})"
                );
            }
            for k in 0..a.count(v) + 1 {
                assert_eq!(a.select(v, k), b.select(v, k), "select({s},{k})");
            }
            for k in [0, 1, 5] {
                assert_eq!(
                    a.select_prefix(v, k),
                    b.select_prefix(v, k),
                    "select_prefix({s},{k})"
                );
            }
            assert_eq!(a.admits(v), b.admits(v), "admits({s})");
        }
        let (l, r) = (n / 4, n - n / 4);
        assert_eq!(a.distinct_in_range(l, r), b.distinct_in_range(l, r));
        assert_eq!(a.range_majority(l, r), b.range_majority(l, r));
        assert_eq!(a.range_frequent(l, r, 2), b.range_frequent(l, r, 2));
        assert_eq!(
            a.distinct_prefixes_in_range(l, r, 4),
            b.distinct_prefixes_in_range(l, r, 4)
        );
        let ia: Vec<BitString> = a.iter_range_boxed(l, r).collect();
        let ib: Vec<BitString> = b.iter_range_boxed(l, r).collect();
        assert_eq!(ia, ib);
    }

    #[test]
    fn freeze_matches_from_scratch_build() {
        let mut next = xorshift(0xF1E2_D3C4);
        let encode = |v: u64| BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0));
        let mut dynamic = DynamicWaveletTrie::new();
        for _ in 0..400 {
            let v = next() % 60;
            let pos = (next() % (dynamic.len() as u64 + 1)) as usize;
            dynamic.insert(encode(v).as_bitstr(), pos).unwrap();
        }
        for _ in 0..50 {
            let pos = (next() % dynamic.len() as u64) as usize;
            dynamic.delete(pos);
        }
        let frozen = dynamic.freeze();
        let rebuilt = WaveletTrie::from_bitstrings(dynamic.iter_seq()).unwrap();
        let probes: Vec<BitString> = (0..60).map(encode).collect();
        assert_same_index(&frozen, &rebuilt, &probes);
        assert_same_index(&frozen, &dynamic, &probes);
        // The space report must be coherent too (same nH0, same h̃·n).
        let a = frozen.space_breakdown();
        let b = rebuilt.space_breakdown();
        assert!((a.nh0_bits - b.nh0_bits).abs() < 1e-6);
        assert_eq!(a.hn_bits, b.hn_bits);
        assert_eq!(a.label_bits, b.label_bits);
        assert_eq!(a.lt_bits, b.lt_bits);
    }

    #[test]
    fn freeze_append_only_variant() {
        let mut wt = AppendWaveletTrie::new();
        for s in ["0001", "0011", "0100", "00100", "0100", "00100", "0100"] {
            wt.append(bs(s).as_bitstr()).unwrap();
        }
        let frozen = wt.freeze();
        let rebuilt = WaveletTrie::from_bitstrings(wt.iter_seq()).unwrap();
        let probes: Vec<BitString> = ["0001", "0011", "0100", "00100", "11", "00"]
            .iter()
            .map(|s| bs(s))
            .collect();
        assert_same_index(&frozen, &rebuilt, &probes);
    }

    #[test]
    fn freeze_edge_cases() {
        // Empty.
        let empty = DynamicWaveletTrie::new().freeze();
        assert!(empty.is_empty());
        assert_eq!(empty.distinct_len(), 0);
        // Single distinct string (root leaf), duplicated.
        let mut wt = DynamicWaveletTrie::new();
        for _ in 0..5 {
            wt.append(bs("1010").as_bitstr()).unwrap();
        }
        let frozen = wt.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(frozen.distinct_len(), 1);
        assert_eq!(frozen.access(3), bs("1010"));
        assert_eq!(frozen.rank(bs("1010").as_bitstr(), 5), 5);
        // Empty-string singleton.
        let mut wt = DynamicWaveletTrie::new();
        wt.append(bs("").as_bitstr()).unwrap();
        let frozen = wt.freeze();
        assert_eq!(frozen.access(0), bs(""));
    }

    #[test]
    fn freeze_with_threads_matches_serial() {
        let mut next = xorshift(0x7EA5);
        let encode = |v: u64| BitString::from_bits((0..12).rev().map(move |k| (v >> k) & 1 != 0));
        let mut dynamic = DynamicWaveletTrie::new();
        for _ in 0..3000 {
            dynamic.append(encode(next() % 500).as_bitstr()).unwrap();
        }
        let serial = dynamic.freeze();
        for threads in [1usize, 2, 4] {
            let par = dynamic.freeze_with_threads(threads);
            let a = serial.space_breakdown();
            let b = par.space_breakdown();
            assert_eq!(a.total_bits, b.total_bits, "threads={threads}");
            for i in (0..3000).step_by(271) {
                assert_eq!(par.access(i), serial.access(i), "access({i})");
            }
            for v in (0..500).step_by(31) {
                let s = encode(v);
                assert_eq!(
                    par.count(s.as_bitstr()),
                    serial.count(s.as_bitstr()),
                    "count({v})"
                );
            }
        }
    }

    #[test]
    fn thaw_round_trips_and_stays_editable() {
        let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
            .iter()
            .map(|s| bs(s))
            .collect();
        let stat = WaveletTrie::build(&seq).unwrap();
        let mut melted: DynamicWaveletTrie = stat.thaw();
        let probes: Vec<BitString> = seq.clone();
        assert_same_index(&melted, &stat, &probes);
        // Thaw → freeze round trip is bit-identical on queries.
        let refrozen = melted.freeze();
        assert_same_index(&refrozen, &stat, &probes);
        // The melted trie is fully dynamic again.
        melted.insert(bs("11").as_bitstr(), 3).unwrap();
        assert_eq!(melted.len(), 8);
        assert_eq!(melted.access(3), bs("11"));
        let removed = melted.delete(0);
        assert_eq!(removed, bs("0001"));
        assert_eq!(melted.distinct_len(), 4);
        // Thaw into the append-only backend too.
        let mut app: AppendWaveletTrie = stat.thaw();
        app.append(bs("0111").as_bitstr()).unwrap();
        assert_eq!(app.len(), 8);
        assert_eq!(app.access(7), bs("0111"));
        assert_eq!(app.count(bs("0100").as_bitstr()), 3);
    }

    #[test]
    fn thaw_empty_and_singleton() {
        let empty = WaveletTrie::build::<BitString>(&[]).unwrap();
        let d: DynamicWaveletTrie = empty.thaw();
        assert!(d.is_empty());
        let one = WaveletTrie::build(&[bs("0110")]).unwrap();
        let mut d: DynamicWaveletTrie = one.thaw();
        assert_eq!(d.access(0), bs("0110"));
        d.append(bs("0111").as_bitstr()).unwrap();
        assert_eq!(d.len(), 2);
    }
}
