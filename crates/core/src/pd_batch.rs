//! Software-pipelined batched queries for the path-decomposed static trie.
//!
//! Same node-grouped lockstep discipline as [`crate::batch`] (the wavelet
//! trie's kernels): lanes stay in node-group order, each group's children
//! are emitted as two consecutive runs, and the per-level bitvector probes
//! of *all* surviving lanes go through one batched RRR round
//! (`get_rank1_batch` / `rank1_batch`) so the miss chains overlap.
//!
//! The path decomposition makes the per-level bookkeeping cheaper than the
//! wavelet trie's: a [`PdNode`] handle already carries its label bounds and
//! bitvector segment, so there is no stage-A metadata resolve at all —
//! heavy-child transitions are consecutive directory reads and only light
//! transitions (≤ log n per lane in total) touch the skeleton. The upward
//! select mapping needs *zero* directory rounds: each recorded ancestor
//! handle has its segment resolved.
//!
//! Every function is bit-identical to its scalar counterpart in
//! [`crate::nav`]; `tests/pd_model.rs` pins that against the wavelet trie.

use crate::nav::TrieNav;
use crate::pd::{PathDecompTrie, PdNode};
use wt_bits::BitSelect;
use wt_trie::{BitStr, BitString};

/// Sentinel for "no parent" in the descent-link arena.
const NO_LINK: u32 = u32::MAX;

/// Below this many lanes the grouped pipeline's bookkeeping outweighs the
/// overlap it buys; such batches take the scalar loop instead.
const MIN_BATCH: usize = 8;

/// The grouped pipeline earns its bookkeeping by *deduplicating* shared
/// descents: lanes whose queries walk the same centroid path ride one
/// group. On a low-sharing trie — path count within a small factor of the
/// sequence length, i.e. near-distinct keys — there is nothing to dedup,
/// and the specialized scalar walkers (exact next-probe prefetch, seat
/// cursors) beat lockstep grouping outright. Measured on the E16
/// workloads: grouped leads on the Zipf url trie, trails the scalar loop
/// on the 12M near-distinct ints trie.
fn low_sharing(pd: &PathDecompTrie) -> bool {
    pd.n_paths().saturating_mul(4) > pd.len()
}

/// Emits a freshly created child group: registers it for the next level
/// and hints its label words (and, for internal nodes, the head of its
/// bitvector segment) into cache before any lane touches them.
#[inline]
fn push_child(pd: &PathDecompTrie, groups: &mut Vec<(PdNode, u32)>, child: PdNode, run_len: usize) {
    pd.labels.prefetch(child.lab_start as usize);
    if child.j < child.k {
        pd.bvs.prefetch(child.seg_start as usize);
    }
    groups.push((child, run_len as u32));
}

/// Batched `Access` — see the module docs for the pipeline.
pub(crate) fn access_batch(pd: &PathDecompTrie, positions: &[usize]) -> Vec<BitString> {
    if positions.len() < MIN_BATCH || low_sharing(pd) {
        return positions
            .iter()
            .map(|&p| crate::pd_scalar::access(pd, p))
            .collect();
    }
    for &p in positions {
        assert!(p < pd.len(), "Access position out of bounds");
    }
    let m0 = positions.len();
    let mut out: Vec<BitString> = std::iter::repeat_with(BitString::new).take(m0).collect();
    let root = pd.nav_root().expect("nonempty");
    let mut lane: Vec<u32> = (0..m0 as u32).collect();
    let mut pos: Vec<usize> = positions.to_vec();
    let mut groups: Vec<(PdNode, u32)> = vec![(root, m0 as u32)];
    let mut groups2: Vec<(PdNode, u32)> = Vec::new();
    let mut s_lane: Vec<u32> = Vec::with_capacity(m0);
    let mut s_gi: Vec<u32> = Vec::with_capacity(m0);
    let mut gidx: Vec<usize> = Vec::with_capacity(m0);
    let mut gr: Vec<(bool, usize)> = Vec::with_capacity(m0);
    while !groups.is_empty() {
        // Per lane: emit the group label; leaves finish here. Survivors
        // register their global bitvector target.
        s_lane.clear();
        s_gi.clear();
        gidx.clear();
        let mut cur = 0usize;
        for (gi, &(v, len)) in groups.iter().enumerate() {
            let label = pd.label_view(&v);
            let leaf = pd.nav_is_leaf(v);
            for k in cur..cur + len as usize {
                out[lane[k] as usize].push_str(label);
                if !leaf {
                    s_lane.push(lane[k]);
                    s_gi.push(gi as u32);
                    gidx.push(v.seg_start as usize + pos[k]);
                }
            }
            cur += len as usize;
        }
        if s_lane.is_empty() {
            break;
        }
        // Fused get+rank across all surviving lanes in one batched RRR
        // round (its own three-phase pipeline inside).
        gr.clear();
        gr.resize(s_lane.len(), (false, 0));
        pd.bvs.get_rank1_batch(&gidx, &mut gr);
        // Partition each group into its child runs (child 0 first).
        groups2.clear();
        lane.clear();
        pos.clear();
        let mut a = 0usize;
        while a < s_gi.len() {
            let gi = s_gi[a] as usize;
            let mut b = a + 1;
            while b < s_gi.len() && s_gi[b] as usize == gi {
                b += 1;
            }
            let (v, _) = groups[gi];
            let (s, ones) = (v.seg_start as usize, v.ones_before as usize);
            for want in [false, true] {
                let start = lane.len();
                for k in a..b {
                    let (bit, r1) = gr[k];
                    if bit == want {
                        out[s_lane[k] as usize].push(bit);
                        lane.push(s_lane[k]);
                        pos.push(if bit {
                            r1 - ones
                        } else {
                            (gidx[k] - r1) - (s - ones)
                        });
                    }
                }
                if lane.len() > start {
                    push_child(pd, &mut groups2, pd.nav_child(v, want), lane.len() - start);
                }
            }
            a = b;
        }
        std::mem::swap(&mut groups, &mut groups2);
    }
    out
}

/// Result of a grouped descent: per-lane outcome plus the shared
/// (ancestor, branch-bit) trails in a link arena.
struct Descent {
    /// Per lane: `(node, link)` when the descent found a match.
    found: Vec<Option<(PdNode, u32)>>,
    /// Link arena: `(parent link, ancestor node, branch bit)`.
    links: Vec<(u32, PdNode, bool)>,
}

impl Descent {
    /// Materializes the root-to-node trail behind `link`.
    fn path_of(&self, mut link: u32, out: &mut Vec<(PdNode, bool)>) {
        out.clear();
        while link != NO_LINK {
            let (p, v, b) = self.links[link as usize];
            out.push((v, b));
            link = p;
        }
        out.reverse();
    }
}

/// Shared grouped descent, exact (`prefix = false`) or prefix
/// (`prefix = true`) — the path-decomposed counterpart of
/// `crate::batch::descend_batch`. Lanes with equal query strings stay in
/// one group for the whole walk.
fn descend_batch(pd: &PathDecompTrie, queries: &[BitStr<'_>], prefix: bool) -> Descent {
    let m0 = queries.len();
    let mut desc = Descent {
        found: (0..m0).map(|_| None).collect(),
        links: Vec::new(),
    };
    if m0 == 0 {
        return desc;
    }
    let Some(root) = pd.nav_root() else {
        return desc;
    };
    let mut lane: Vec<u32> = (0..m0 as u32).collect();
    // (node, run len, delta, link): delta is the consumed-bit count.
    let mut groups: Vec<(PdNode, u32, usize, u32)> = vec![(root, m0 as u32, 0, NO_LINK)];
    let mut groups2: Vec<(PdNode, u32, usize, u32)> = Vec::new();
    let mut lane2: Vec<u32> = Vec::with_capacity(m0);
    let mut branch: Vec<u8> = Vec::with_capacity(m0); // 0, 1, 2 = lane done
    while !groups.is_empty() {
        groups2.clear();
        lane2.clear();
        let mut cur = 0usize;
        for &(v, len, delta, link) in groups.iter() {
            let label = pd.label_view(&v);
            let leaf = pd.nav_is_leaf(v);
            let run = cur..cur + len as usize;
            cur = run.end;
            branch.clear();
            for k in run.clone() {
                let l_id = lane[k] as usize;
                let s = queries[l_id];
                let rest = s.suffix(delta);
                let lcp = label.lcp(&rest);
                if prefix && delta + lcp == s.len() {
                    desc.found[l_id] = Some((v, link));
                    branch.push(2);
                    continue;
                }
                if lcp < label.len() {
                    branch.push(2); // mismatch inside the label: absent
                    continue;
                }
                let d = delta + lcp;
                if leaf {
                    if !prefix && d == s.len() {
                        desc.found[l_id] = Some((v, link));
                    }
                    branch.push(2);
                    continue;
                }
                if d == s.len() {
                    branch.push(2); // proper prefix of everything below
                    continue;
                }
                branch.push(s.get(d) as u8);
            }
            if leaf {
                continue;
            }
            let child_delta = delta + label.len() + 1;
            for want in [0u8, 1u8] {
                let start = lane2.len();
                for (k, &b) in run.clone().zip(&branch) {
                    if b == want {
                        lane2.push(lane[k]);
                    }
                }
                if lane2.len() > start {
                    let bit = want == 1;
                    let child = pd.nav_child(v, bit);
                    pd.labels.prefetch(child.lab_start as usize);
                    desc.links.push((link, v, bit));
                    groups2.push((
                        child,
                        (lane2.len() - start) as u32,
                        child_delta,
                        (desc.links.len() - 1) as u32,
                    ));
                }
            }
        }
        std::mem::swap(&mut groups, &mut groups2);
        std::mem::swap(&mut lane, &mut lane2);
    }
    desc
}

/// The distinct `(node, link)` outcomes of a descent with the lanes that
/// reached each, so identical queries pay once downstream.
struct FoundGroups {
    node: Vec<PdNode>,
    /// Materialized root-to-node trail per outcome.
    paths: Vec<Vec<(PdNode, bool)>>,
    /// Lanes per outcome.
    lanes: Vec<Vec<u32>>,
}

fn found_groups(pd: &PathDecompTrie, desc: &Descent) -> FoundGroups {
    let mut fg = FoundGroups {
        node: Vec::new(),
        paths: Vec::new(),
        lanes: Vec::new(),
    };
    let mut by_key: std::collections::HashMap<(usize, u32), usize> =
        std::collections::HashMap::new();
    for (l, f) in desc.found.iter().enumerate() {
        let Some((node, link)) = *f else { continue };
        let idx = *by_key.entry((pd.nav_key(node), link)).or_insert_with(|| {
            fg.node.push(node);
            let mut p = Vec::new();
            desc.path_of(link, &mut p);
            fg.paths.push(p);
            fg.lanes.push(Vec::new());
            fg.node.len() - 1
        });
        fg.lanes[idx].push(l as u32);
    }
    fg
}

/// Sequence positions in each found group's subtree — resolved from the
/// handles and the ones directory, no bitvector scans.
fn subtree_counts(pd: &PathDecompTrie, fg: &FoundGroups) -> Vec<usize> {
    fg.node
        .iter()
        .zip(&fg.paths)
        .map(|(v, path)| {
            if !pd.nav_is_leaf(*v) {
                v.seg_len as usize
            } else {
                match path.last() {
                    Some(&(parent, b)) => {
                        let ones = pd.seg_ones(&parent);
                        if b {
                            ones
                        } else {
                            parent.seg_len as usize - ones
                        }
                    }
                    None => pd.len(), // root leaf: the whole sequence
                }
            }
        })
        .collect()
}

/// Batched `Rank(s, pos)` — the fused grouped walk of
/// `crate::batch::rank_batch`: each lane's position maps down in the same
/// round that consumes its query bits.
pub(crate) fn rank_batch(pd: &PathDecompTrie, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
    if queries.len() < MIN_BATCH || low_sharing(pd) {
        return queries
            .iter()
            .map(|&(s, pos)| crate::pd_scalar::rank(pd, s, pos))
            .collect();
    }
    for &(_, pos) in queries {
        assert!(pos <= pd.len(), "Rank position out of bounds");
    }
    let m0 = queries.len();
    let mut res = vec![0usize; m0];
    let Some(root) = pd.nav_root() else {
        return res;
    };
    let mut lane: Vec<u32> = (0..m0 as u32).collect();
    let mut p: Vec<usize> = queries.iter().map(|&(_, pos)| pos).collect();
    let mut groups: Vec<(PdNode, u32, usize)> = vec![(root, m0 as u32, 0)];
    let mut groups2: Vec<(PdNode, u32, usize)> = Vec::new();
    let mut lane2: Vec<u32> = Vec::with_capacity(m0);
    let mut p2: Vec<usize> = Vec::with_capacity(m0);
    let mut branch: Vec<u8> = Vec::with_capacity(m0); // 0, 1, 2 = lane done
    let mut gidx: Vec<usize> = Vec::with_capacity(m0);
    let mut r1s: Vec<usize> = Vec::with_capacity(m0);
    while !groups.is_empty() {
        // Pass 1: consume this level's label per lane; survivors register
        // their bitvector target for the batched rank round.
        branch.clear();
        gidx.clear();
        let mut cur = 0usize;
        for &(v, len, delta) in groups.iter() {
            let label = pd.label_view(&v);
            let leaf = pd.nav_is_leaf(v);
            for k in cur..cur + len as usize {
                let l_id = lane[k] as usize;
                let q = queries[l_id].0;
                let rest = q.suffix(delta);
                let lcp = label.lcp(&rest);
                if lcp < label.len() {
                    branch.push(2); // mismatch inside the label: absent (0)
                    continue;
                }
                let d = delta + lcp;
                if leaf {
                    if d == q.len() {
                        res[l_id] = p[k]; // found: fully mapped position
                    }
                    branch.push(2);
                    continue;
                }
                if d == q.len() {
                    branch.push(2); // proper prefix of everything below
                    continue;
                }
                branch.push(q.get(d) as u8);
                gidx.push(v.seg_start as usize + p[k]);
            }
            cur += len as usize;
        }
        if gidx.is_empty() {
            break;
        }
        r1s.clear();
        r1s.resize(gidx.len(), 0);
        pd.bvs.rank1_batch(&gidx, &mut r1s);
        // Pass 2: map positions down and split each group into child runs.
        groups2.clear();
        lane2.clear();
        p2.clear();
        let mut cur = 0usize;
        let mut at = 0usize; // cursor into gidx/r1s (survivors only)
        for &(v, len, delta) in groups.iter() {
            let run = cur..cur + len as usize;
            cur = run.end;
            if pd.nav_is_leaf(v) {
                continue; // no survivors registered targets here
            }
            let (s, ones) = (v.seg_start as usize, v.ones_before as usize);
            let child_delta = delta + v.lab_len as usize + 1;
            let run_at = at;
            for want in [0u8, 1u8] {
                let start = lane2.len();
                let mut a = run_at;
                for k in run.clone() {
                    let b = branch[k];
                    if b == 2 {
                        continue;
                    }
                    let (gx, r1) = (gidx[a], r1s[a]);
                    a += 1;
                    if b == want {
                        lane2.push(lane[k]);
                        p2.push(if b == 1 {
                            r1 - ones
                        } else {
                            (gx - r1) - (s - ones)
                        });
                    }
                }
                at = a;
                if lane2.len() > start {
                    let child = pd.nav_child(v, want == 1);
                    pd.labels.prefetch(child.lab_start as usize);
                    if child.j < child.k {
                        pd.bvs.prefetch(child.seg_start as usize);
                    }
                    groups2.push((child, (lane2.len() - start) as u32, child_delta));
                }
            }
        }
        std::mem::swap(&mut groups, &mut groups2);
        std::mem::swap(&mut lane, &mut lane2);
        std::mem::swap(&mut p, &mut p2);
    }
    res
}

/// Batched `Select(s, idx)` — grouped descent, then lockstep upward
/// mapping. Unlike the wavelet trie's kernel, the upward rounds need no
/// directory probes: every recorded ancestor handle carries its segment.
pub(crate) fn select_batch(
    pd: &PathDecompTrie,
    queries: &[(BitStr<'_>, usize)],
) -> Vec<Option<usize>> {
    if queries.len() < MIN_BATCH || low_sharing(pd) {
        return queries
            .iter()
            .map(|&(s, idx)| crate::pd_scalar::select(pd, s, idx))
            .collect();
    }
    let strings: Vec<BitStr<'_>> = queries.iter().map(|&(s, _)| s).collect();
    let desc = descend_batch(pd, &strings, false);
    let fg = found_groups(pd, &desc);
    let counts = subtree_counts(pd, &fg);
    let mut res: Vec<Option<usize>> = vec![None; queries.len()];
    // Per-lane occurrence index, bound-checked against the group count.
    let mut iv: Vec<usize> = vec![0; queries.len()];
    let mut in_range: Vec<Vec<u32>> = Vec::with_capacity(fg.node.len());
    for (g, lanes) in fg.lanes.iter().enumerate() {
        let mut keep = Vec::new();
        for &l in lanes {
            let idx = queries[l as usize].1;
            if idx < counts[g] {
                iv[l as usize] = idx;
                keep.push(l);
            }
        }
        in_range.push(keep);
    }
    let mut act: Vec<u32> = (0..fg.node.len() as u32)
        .filter(|&g| !in_range[g as usize].is_empty())
        .collect();
    let mut round = 0usize;
    while !act.is_empty() {
        act.retain(|&g| {
            let g = g as usize;
            if fg.paths[g].len() <= round {
                for &l in &in_range[g] {
                    res[l as usize] = Some(iv[l as usize]);
                }
                false
            } else {
                true
            }
        });
        if act.is_empty() {
            break;
        }
        // Entry `depth - 1 - round` of each group: leaf-to-root order.
        for &g in &act {
            let path = &fg.paths[g as usize];
            let (v, _) = path[path.len() - 1 - round];
            pd.bvs.prefetch(v.seg_start as usize);
        }
        for &g in &act {
            let g = g as usize;
            let path = &fg.paths[g];
            let (v, bit) = path[path.len() - 1 - round];
            let (s, ones) = (v.seg_start as usize, v.ones_before as usize);
            let e = s + v.seg_len as usize;
            let before = if bit { ones } else { s - ones };
            for &l in &in_range[g] {
                let l = l as usize;
                match pd.bvs.select(bit, before + iv[l]) {
                    Some(pp) if pp < e => iv[l] = pp - s,
                    _ => iv[l] = usize::MAX, // no such occurrence: dead lane
                }
            }
        }
        for &g in &act {
            in_range[g as usize].retain(|&l| iv[l as usize] != usize::MAX);
        }
        act.retain(|&g| !in_range[g as usize].is_empty());
        round += 1;
    }
    res
}

/// Batched `CountPrefix(p)`: grouped prefix descent, then subtree sizes
/// straight from the handles — identical prefixes pay a single descent.
///
/// Routed through the grouped pipeline only on high-sharing tries: the
/// scalar walker is descent-only (one delimiter pair at the end, no
/// per-level rank chain), so there is no memory latency for lockstep
/// grouping to overlap — dedup of shared prefix descents is the whole
/// upside, and it only outweighs the group bookkeeping when descents
/// collapse heavily.
pub(crate) fn count_prefix_batch(pd: &PathDecompTrie, prefixes: &[BitStr<'_>]) -> Vec<usize> {
    if prefixes.len() < MIN_BATCH || low_sharing(pd) {
        return prefixes
            .iter()
            .map(|&p| crate::pd_scalar::count_prefix(pd, p))
            .collect();
    }
    let desc = descend_batch(pd, prefixes, true);
    let fg = found_groups(pd, &desc);
    let counts = subtree_counts(pd, &fg);
    let mut res = vec![0usize; prefixes.len()];
    for (g, lanes) in fg.lanes.iter().enumerate() {
        for &l in lanes {
            res[l as usize] = counts[g];
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use crate::ops::SeqIndex;
    use crate::pd::PathDecompTrie;
    use wt_trie::BitString;

    /// Pipeline-level smoke check (the cross-representation equivalence
    /// suite lives in `tests/pd_model.rs`): every batched op must agree
    /// with its scalar counterpart across group splits.
    #[test]
    fn group_descent_matches_scalar() {
        let mut s = 0xBADC_0DE5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let encode = |v: u64| BitString::from_bits((0..12).rev().map(move |k| (v >> k) & 1 != 0));
        let seq: Vec<BitString> = (0..3000).map(|_| encode(next() % 900)).collect();
        let pd = PathDecompTrie::build(&seq).unwrap();
        let n = pd.len();
        let positions: Vec<usize> = (0..300).map(|_| (next() % n as u64) as usize).collect();
        let batched = pd.access_batch(&positions);
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(batched[k], pd.access(p), "access lane {k}");
        }
        let probes: Vec<BitString> = (0..200)
            .map(|k| {
                if k % 3 == 0 {
                    encode(next() % 1200) // sometimes absent
                } else {
                    seq[(next() % seq.len() as u64) as usize].clone()
                }
            })
            .collect();
        let rank_q: Vec<_> = probes
            .iter()
            .map(|s| (s.as_bitstr(), (next() % (n as u64 + 1)) as usize))
            .collect();
        let got = pd.rank_batch(&rank_q);
        for (k, &(s, pos)) in rank_q.iter().enumerate() {
            assert_eq!(got[k], pd.rank(s, pos), "rank lane {k}");
        }
        let sel_q: Vec<_> = probes
            .iter()
            .map(|s| (s.as_bitstr(), (next() % 12) as usize))
            .collect();
        let got = pd.select_batch(&sel_q);
        for (k, &(s, idx)) in sel_q.iter().enumerate() {
            assert_eq!(got[k], pd.select(s, idx), "select lane {k}");
        }
        let prefixes: Vec<_> = probes
            .iter()
            .map(|s| s.as_bitstr().prefix((next() % 14) as usize % (s.len() + 1)))
            .collect();
        let got = pd.count_prefix_batch(&prefixes);
        for (k, &p) in prefixes.iter().enumerate() {
            assert_eq!(got[k], pd.count_prefix(p), "count_prefix lane {k}");
        }
    }
}
