//! Path-decomposed static trie — the cache-friendly twin of the static
//! Wavelet Trie (Grossi–Ottaviano, "Fast Compressed Tries through Path
//! Decompositions", applied to the Definition 3.1 binary trie).
//!
//! The binary wavelet trie pays one chain of dependent cache misses per
//! *bit-level* of the descent: DFUDS word → internal-flag rank → three
//! scattered Elias–Fano probes → RRR rank, every level. On near-distinct
//! workloads (the 12M-key ints adversary) the trie is ~log n levels deep
//! and the scalar path is latency-bound.
//!
//! [`PathDecompTrie`] stores the *same* binary trie as a centroid path
//! decomposition: each decomposition node is one root-to-centroid-leaf
//! path; the branching steps of a path are laid out **consecutively** in
//! every directory (labels, branch directions, bitvector delimiters, the
//! RRR concatenation). A descent that stays on the heavy path therefore
//! reads consecutive directory entries — cache hits after the first — and
//! pays a scattered miss chain only when it leaves the path, which happens
//! O(log n) times regardless of depth. The node handle ([`PdNode`])
//! carries its resolved directory state, so the per-step work is one RRR
//! probe plus arithmetic.
//!
//! Every per-binary-node view (label α, bitvector β) is **bit-identical**
//! to the wavelet trie's, so the whole [`SeqIndex`](crate::SeqIndex)
//! surface — implemented once over [`TrieNav`] — answers identically;
//! `tests/pd_model.rs` pins this. Construction is a structural conversion
//! from either the static or the dynamic wavelet trie (word-level copies,
//! no string re-emission), and [`PathDecompTrie::to_static`] /
//! [`PathDecompTrie::thaw`] convert back for store compaction.

use crate::dyn_wt::{DynWaveletTrie, Node, WtBitVec};
use crate::nav::TrieNav;
use crate::static_wt::{StaticParts, WaveletTrie};
use std::collections::VecDeque;
use wt_bits::persist::{kind, Archive, ArchiveWriter, LoadError, Persist};
use wt_bits::{BitAccess, BitRank, BitSelect, EliasFano, RawBitVec, RrrVector, SpaceUsage};
use wt_trie::{BitStr, BitString, PathSkeleton};

/// An immutable compressed indexed sequence of binary strings, stored as a
/// centroid path decomposition of the Definition 3.1 trie.
#[derive(Clone, Debug)]
pub struct PathDecompTrie {
    pub(crate) n: usize,
    /// BFS degree directory of the decomposition tree (one node per
    /// distinct string; degree = branching steps on the node's path).
    pub(crate) skeleton: PathSkeleton,
    /// Concatenated binary-node labels in `(path, step)` order.
    pub(crate) labels: RawBitVec,
    /// Prefix sums of label lengths (`2·paths` values).
    pub(crate) label_bounds: EliasFano,
    /// Heavy-branch direction per step, global step order.
    pub(crate) dirs: RawBitVec,
    /// Concatenated per-step bitvectors β, `(path, step)` order, RRR.
    pub(crate) bvs: RrrVector,
    /// Prefix sums of per-step bitvector lengths (`steps + 1` values).
    pub(crate) bv_bounds: EliasFano,
    /// Prefix sums of per-step ones counts (`steps + 1` values).
    pub(crate) bv_ones: EliasFano,
    /// `n·H0(S)` in bits (for the space report).
    nh0_bits: f64,
    /// Length of the root label.
    root_label_len: usize,
}

/// Handle to one *binary* trie node `(path, step)` with its directory
/// state resolved, so in-node operations never re-probe the directories.
#[derive(Clone, Copy, Debug)]
pub struct PdNode {
    /// Decomposition-tree node (BFS id).
    pub(crate) pd: usize,
    /// Step along the path, `0..=k`; `j == k` is the path's leaf.
    pub(crate) j: usize,
    /// Branching steps on this path (= children of `pd`).
    pub(crate) k: usize,
    /// Global index of this path's first step; also `first_child − 1` and
    /// `first_label − pd`.
    pub(crate) step_base: usize,
    /// Label arena bounds of this binary node's label α.
    pub(crate) lab_start: u64,
    pub(crate) lab_len: u64,
    /// β segment in the global RRR concatenation (valid when `j < k`).
    pub(crate) seg_start: u64,
    pub(crate) seg_len: u64,
    pub(crate) ones_before: u64,
}

impl PdNode {
    /// Global step id (valid when `j < k`).
    #[inline]
    pub(crate) fn step(&self) -> usize {
        self.step_base + self.j
    }
}

/// Raw BFS-order material of a path decomposition, assembled into the
/// succinct directories by [`PathDecompTrie::assemble`].
pub(crate) struct PdParts {
    pub n: usize,
    /// Per-path branching-step counts, BFS order.
    pub degrees: Vec<u64>,
    pub labels: RawBitVec,
    pub label_lens: Vec<u64>,
    pub dirs: RawBitVec,
    pub bv_concat: RawBitVec,
    pub bv_lens: Vec<u64>,
    pub bv_ones: Vec<u64>,
    pub nh0_bits: f64,
    pub root_label_len: usize,
}

impl PdParts {
    fn empty() -> Self {
        PdParts {
            n: 0,
            degrees: Vec::new(),
            labels: RawBitVec::new(),
            label_lens: Vec::new(),
            dirs: RawBitVec::new(),
            bv_concat: RawBitVec::new(),
            bv_lens: Vec::new(),
            bv_ones: Vec::new(),
            nh0_bits: 0.0,
            root_label_len: 0,
        }
    }
}

/// Structural view of a binary wavelet trie the decomposition walk can
/// consume with word-level copies — implemented by the static trie (via a
/// one-shot RRR decode) and the dynamic tries (via their node bitvectors).
pub(crate) trait PdSource {
    type N: Copy;
    fn root(&self) -> Option<Self::N>;
    fn is_leaf(&self, v: Self::N) -> bool;
    fn child(&self, v: Self::N, bit: bool) -> Self::N;
    /// Appends the label of `v`; returns its length.
    fn append_label(&self, v: Self::N, out: &mut RawBitVec) -> usize;
    /// `(|β|, ones(β))` of internal node `v`.
    fn bv_len_ones(&self, v: Self::N) -> (usize, usize);
    /// Appends β of internal node `v`.
    fn append_bv(&self, v: Self::N, out: &mut RawBitVec);
}

/// Static-trie source: the RRR concatenation is decoded to raw words once,
/// so every per-node β copy is a word-level range copy.
struct StaticSrc<'w> {
    wt: &'w WaveletTrie,
    raw: RawBitVec,
}

/// Label bounds plus, for internal nodes, `(seg_start, seg_len, ones)` of β.
type NodeBounds = ((usize, usize), Option<(usize, usize, usize)>);

impl StaticSrc<'_> {
    #[inline]
    fn bounds(&self, v: usize) -> NodeBounds {
        let pid = self.wt.tree.preorder(v);
        let (ls, le) = self.wt.label_bounds.get_pair(pid);
        if self.wt.tree.is_leaf(v) {
            ((ls as usize, le as usize), None)
        } else {
            let j = self.wt.internal.rank1(pid);
            let (s, e) = self.wt.bv_bounds.get_pair(j);
            let (o0, o1) = self.wt.bv_ones.get_pair(j);
            (
                (ls as usize, le as usize),
                Some((s as usize, (e - s) as usize, (o1 - o0) as usize)),
            )
        }
    }
}

impl PdSource for StaticSrc<'_> {
    type N = usize;

    fn root(&self) -> Option<usize> {
        self.wt.nav_root()
    }

    fn is_leaf(&self, v: usize) -> bool {
        self.wt.nav_is_leaf(v)
    }

    fn child(&self, v: usize, bit: bool) -> usize {
        self.wt.nav_child(v, bit)
    }

    fn append_label(&self, v: usize, out: &mut RawBitVec) -> usize {
        let ((ls, le), _) = self.bounds(v);
        out.extend_from_range(&self.wt.labels, ls, le - ls);
        le - ls
    }

    fn bv_len_ones(&self, v: usize) -> (usize, usize) {
        let (_, seg) = self.bounds(v);
        let (_, len, ones) = seg.expect("bv_len_ones on a leaf");
        (len, ones)
    }

    fn append_bv(&self, v: usize, out: &mut RawBitVec) {
        let (_, seg) = self.bounds(v);
        let (s, len, _) = seg.expect("append_bv on a leaf");
        out.extend_from_range(&self.raw, s, len);
    }
}

impl<'s, B: WtBitVec> PdSource for &'s DynWaveletTrie<B> {
    type N = &'s Node<B>;

    fn root(&self) -> Option<&'s Node<B>> {
        self.root.as_ref()
    }

    fn is_leaf(&self, v: &'s Node<B>) -> bool {
        matches!(v, Node::Leaf(_))
    }

    fn child(&self, v: &'s Node<B>, bit: bool) -> &'s Node<B> {
        match v {
            Node::Internal(int) => &int.children[bit as usize],
            Node::Leaf(_) => panic!("child of a leaf"),
        }
    }

    fn append_label(&self, v: &'s Node<B>, out: &mut RawBitVec) -> usize {
        let label = v.label();
        label.as_bitstr().append_into(out);
        label.len()
    }

    fn bv_len_ones(&self, v: &'s Node<B>) -> (usize, usize) {
        match v {
            Node::Internal(int) => {
                let len = int.bv.wt_len();
                (len, int.bv.wt_rank(true, len))
            }
            Node::Leaf(_) => panic!("bv_len_ones on a leaf"),
        }
    }

    fn append_bv(&self, v: &'s Node<B>, out: &mut RawBitVec) {
        match v {
            Node::Internal(int) => int.bv.wt_append_into(out),
            Node::Leaf(_) => panic!("append_bv on a leaf"),
        }
    }
}

/// The decomposition walk: BFS over decomposition nodes; within each, the
/// heavy-path loop. Children are enqueued in step order, so BFS numbering
/// makes every node's children a consecutive id range (the
/// [`PathSkeleton`] invariant). The heavy child is the one holding the
/// *majority of occurrences* (centroid by subsequence count, ties to
/// branch 0), so a uniformly random occurrence leaves the path with
/// probability ≤ 1/2 per step and the decomposition tree has depth
/// O(log n) on every workload.
fn build_parts<S: PdSource>(src: &S, n: usize) -> PdParts {
    let mut parts = PdParts::empty();
    parts.n = n;
    let Some(root) = src.root() else {
        return parts;
    };
    let mut queue: VecDeque<(S::N, usize)> = VecDeque::new();
    queue.push_back((root, n));
    let mut first = true;
    while let Some((head, count)) = queue.pop_front() {
        let (mut v, mut m) = (head, count);
        let mut k = 0u64;
        loop {
            let ll = src.append_label(v, &mut parts.labels);
            parts.label_lens.push(ll as u64);
            if first {
                parts.root_label_len = ll;
                first = false;
            }
            if src.is_leaf(v) {
                let c = m as f64;
                parts.nh0_bits += c * (n as f64 / c).log2();
                break;
            }
            let (len, ones) = src.bv_len_ones(v);
            debug_assert_eq!(len, m, "β length = subtree occurrence count");
            src.append_bv(v, &mut parts.bv_concat);
            parts.bv_lens.push(len as u64);
            parts.bv_ones.push(ones as u64);
            let heavy = 2 * ones > len;
            parts.dirs.push(heavy);
            let (light_m, heavy_m) = if heavy {
                (len - ones, ones)
            } else {
                (ones, len - ones)
            };
            queue.push_back((src.child(v, !heavy), light_m));
            v = src.child(v, heavy);
            m = heavy_m;
            k += 1;
        }
        parts.degrees.push(k);
    }
    parts
}

impl PathDecompTrie {
    /// Converts a static wavelet trie, structurally: one BFS walk with
    /// word-level label/bitvector copies (the RRR concatenation is decoded
    /// once up front). No string is re-emitted.
    pub fn from_static(wt: &WaveletTrie) -> Self {
        Self::from_static_with_threads(wt, 1)
    }

    /// [`PathDecompTrie::from_static`] with the succinct assembly spread
    /// over `threads` scoped worker threads (the chunk-parallel RRR
    /// encoding runs on a worker while the main thread builds the
    /// Elias–Fano directories). Bit-identical to the serial conversion.
    pub fn from_static_with_threads(wt: &WaveletTrie, threads: usize) -> Self {
        let src = StaticSrc {
            wt,
            raw: wt.bvs.to_raw(),
        };
        Self::assemble_with_threads(build_parts(&src, wt.len()), threads)
    }

    /// Converts a dynamic wavelet trie directly (any backend), without
    /// freezing to the static form first and without re-emitting strings.
    pub fn from_dynamic<B: WtBitVec>(d: &DynWaveletTrie<B>) -> Self {
        Self::from_dynamic_with_threads(d, 1)
    }

    /// [`PathDecompTrie::from_dynamic`] with threaded assembly.
    pub fn from_dynamic_with_threads<B: WtBitVec>(d: &DynWaveletTrie<B>, threads: usize) -> Self {
        Self::assemble_with_threads(build_parts(&d, d.nav_len()), threads)
    }

    /// Builds from scratch via the static trie (conversion is structural,
    /// so this costs one extra assembly over `WaveletTrie::build`).
    pub fn build<S: std::borrow::Borrow<BitString>>(
        strings: &[S],
    ) -> Result<Self, wt_trie::PrefixFreeViolation> {
        Ok(Self::from_static(&WaveletTrie::build(strings)?))
    }

    /// Compresses BFS raw parts into the succinct directories, with the
    /// RRR encoding on a scoped worker thread when `threads > 1`, like
    /// `WaveletTrie::assemble_with_threads`.
    pub(crate) fn assemble_with_threads(parts: PdParts, threads: usize) -> Self {
        let PdParts {
            n,
            degrees,
            labels,
            label_lens,
            dirs,
            bv_concat,
            bv_lens,
            bv_ones,
            nh0_bits,
            root_label_len,
        } = parts;
        let threads = threads.max(1);
        let (bvs, skeleton, label_bounds, bv_bounds, bv_ones) = if threads == 1 {
            (
                RrrVector::new(&bv_concat),
                PathSkeleton::from_degrees(degrees.iter().copied()),
                EliasFano::prefix_sums(label_lens.iter().copied()),
                EliasFano::prefix_sums(bv_lens.iter().copied()),
                EliasFano::prefix_sums(bv_ones.iter().copied()),
            )
        } else {
            std::thread::scope(|s| {
                let t_bvs = s.spawn(|| RrrVector::from_raw_with_threads(&bv_concat, threads));
                let skeleton = PathSkeleton::from_degrees(degrees.iter().copied());
                let label_bounds = EliasFano::prefix_sums(label_lens.iter().copied());
                let bv_bounds = EliasFano::prefix_sums(bv_lens.iter().copied());
                let bv_ones = EliasFano::prefix_sums(bv_ones.iter().copied());
                (
                    t_bvs.join().expect("RRR build panicked"),
                    skeleton,
                    label_bounds,
                    bv_bounds,
                    bv_ones,
                )
            })
        };
        PathDecompTrie {
            n,
            skeleton,
            labels,
            label_bounds,
            dirs,
            bvs,
            bv_bounds,
            bv_ones,
            nh0_bits,
            root_label_len,
        }
    }

    /// Sequence length n.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of decomposition-tree nodes (= distinct strings).
    #[inline]
    pub fn n_paths(&self) -> usize {
        self.skeleton.n_nodes()
    }

    /// `n·H0(S)` in bits.
    pub fn nh0_bits(&self) -> f64 {
        self.nh0_bits
    }

    /// Resolves the handle of binary node `(pd, j)` given the path's
    /// skeleton entry. The directory probes for consecutive steps of one
    /// path touch adjacent entries, so heavy-path descents stay in cache.
    #[inline]
    fn make_node(&self, pd: usize, j: usize, step_base: usize, k: usize) -> PdNode {
        let (ls, le) = self.label_bounds.get_pair(step_base + pd + j);
        let mut node = PdNode {
            pd,
            j,
            k,
            step_base,
            lab_start: ls,
            lab_len: le - ls,
            seg_start: 0,
            seg_len: 0,
            ones_before: 0,
        };
        if j < k {
            let f = step_base + j;
            let (bs, be) = self.bv_bounds.get_pair(f);
            node.seg_start = bs;
            node.seg_len = be - bs;
            node.ones_before = self.bv_ones.get(f);
        }
        node
    }

    /// Ones in the β segment of internal node `v` (directory probe, no
    /// bitvector scan).
    #[inline]
    pub(crate) fn seg_ones(&self, v: &PdNode) -> usize {
        debug_assert!(v.j < v.k);
        (self.bv_ones.get(v.step() + 1) - v.ones_before) as usize
    }

    /// The label of `v` as a borrowed view.
    #[inline]
    pub(crate) fn label_view(&self, v: &PdNode) -> BitStr<'_> {
        BitStr::new(&self.labels, v.lab_start as usize, v.lab_len as usize)
    }

    /// Converts back to the preorder static representation (one preorder
    /// walk with word-level copies) — the melt path of the tiered store.
    pub fn to_static(&self) -> WaveletTrie {
        self.to_static_with_threads(1)
    }

    /// [`PathDecompTrie::to_static`] with threaded assembly.
    pub fn to_static_with_threads(&self, threads: usize) -> WaveletTrie {
        let parts = self.to_static_parts();
        if threads <= 1 {
            WaveletTrie::assemble(parts)
        } else {
            WaveletTrie::assemble_with_threads(parts, threads)
        }
    }

    fn to_static_parts(&self) -> StaticParts {
        let Some(root) = self.nav_root() else {
            return StaticParts::empty();
        };
        let raw = self.bvs.to_raw();
        let n = self.n;
        let mut degrees: Vec<usize> = Vec::new();
        let mut labels = RawBitVec::new();
        let mut label_lens: Vec<u64> = Vec::new();
        let mut bv_concat = RawBitVec::new();
        let mut bv_lens: Vec<u64> = Vec::new();
        let mut bv_ones: Vec<u64> = Vec::new();
        let mut nh0 = 0.0f64;
        let mut stack: Vec<(PdNode, usize)> = vec![(root, n)];
        while let Some((v, m)) = stack.pop() {
            labels.extend_from_range(&self.labels, v.lab_start as usize, v.lab_len as usize);
            label_lens.push(v.lab_len);
            if self.nav_is_leaf(v) {
                degrees.push(0);
                let c = m as f64;
                nh0 += c * (n as f64 / c).log2();
                continue;
            }
            degrees.push(2);
            bv_concat.extend_from_range(&raw, v.seg_start as usize, v.seg_len as usize);
            bv_lens.push(v.seg_len);
            let ones = self.seg_ones(&v);
            bv_ones.push(ones as u64);
            // Child 0 must pop first (preorder).
            stack.push((self.nav_child(v, true), ones));
            stack.push((self.nav_child(v, false), v.seg_len as usize - ones));
        }
        StaticParts {
            n,
            degrees,
            labels,
            label_lens,
            bv_concat,
            bv_lens,
            bv_ones,
            nh0_bits: nh0,
            root_label_len: self.root_label_len,
        }
    }

    /// Melts into a dynamic wavelet trie (any backend), structurally.
    pub fn thaw<B: WtBitVec>(&self) -> DynWaveletTrie<B> {
        match self.nav_root() {
            None => DynWaveletTrie::new(),
            Some(root) => {
                let raw = self.bvs.to_raw();
                DynWaveletTrie {
                    root: Some(self.thaw_rec(root, &raw)),
                    len: self.n,
                }
            }
        }
    }

    fn thaw_rec<B: WtBitVec>(&self, v: PdNode, raw: &RawBitVec) -> Node<B> {
        let mut label = BitString::new();
        self.nav_label_append(v, &mut label);
        if self.nav_is_leaf(v) {
            Node::Leaf(label)
        } else {
            let (s, e) = (v.seg_start as usize, (v.seg_start + v.seg_len) as usize);
            let bv = B::wt_from_iter((s..e).map(|i| raw.get(i)));
            let children = [
                self.thaw_rec(self.nav_child(v, false), raw),
                self.thaw_rec(self.nav_child(v, true), raw),
            ];
            Node::Internal(Box::new(crate::dyn_wt::Internal {
                label,
                bv,
                children,
            }))
        }
    }

    /// Measured space of each component (experiment E16).
    pub fn space_breakdown(&self) -> PdSpaceBreakdown {
        let skeleton_bits = self.skeleton.size_bits();
        let label_bits = self.labels.len();
        let label_delim_bits = self.label_bounds.size_bits();
        let dir_bits = self.dirs.size_bits();
        let bv_bits = self.bvs.size_bits();
        let bv_delim_bits = self.bv_bounds.size_bits() + self.bv_ones.size_bits();
        let total_bits = self.labels.size_bits()
            + skeleton_bits
            + label_delim_bits
            + dir_bits
            + bv_bits
            + bv_delim_bits;
        PdSpaceBreakdown {
            n: self.n,
            distinct: self.n_paths(),
            skeleton_bits,
            label_bits,
            label_delim_bits,
            dir_bits,
            bv_bits,
            bv_delim_bits,
            total_bits,
            hn_bits: self.bvs.len(),
            nh0_bits: self.nh0_bits,
        }
    }
}

/// Measured space of each component of a [`PathDecompTrie`].
#[derive(Clone, Copy, Debug)]
pub struct PdSpaceBreakdown {
    pub n: usize,
    pub distinct: usize,
    /// BFS degree directory bits.
    pub skeleton_bits: usize,
    /// Raw concatenated label bits.
    pub label_bits: usize,
    /// Elias–Fano delimiters for labels.
    pub label_delim_bits: usize,
    /// Heavy-direction bits (one per step).
    pub dir_bits: usize,
    /// RRR-compressed bitvector bits (including directories).
    pub bv_bits: usize,
    /// Elias–Fano delimiters + ones directory for bitvectors.
    pub bv_delim_bits: usize,
    /// Total measured bits.
    pub total_bits: usize,
    /// `h̃·n`: total bitvector length (bits).
    pub hn_bits: usize,
    /// `n·H0(S)` (bits).
    pub nh0_bits: f64,
}

impl SpaceUsage for PathDecompTrie {
    fn size_bits(&self) -> usize {
        self.space_breakdown().total_bits
    }
}

impl TrieNav for PathDecompTrie {
    type Node<'a> = PdNode;

    #[inline]
    fn nav_root(&self) -> Option<PdNode> {
        if self.n == 0 {
            return None;
        }
        let (base, k) = self.skeleton.node(0);
        Some(self.make_node(0, 0, base, k))
    }

    #[inline]
    fn nav_len(&self) -> usize {
        self.n
    }

    #[inline]
    fn nav_is_leaf(&self, v: PdNode) -> bool {
        v.j == v.k
    }

    #[inline]
    fn nav_child(&self, v: PdNode, bit: bool) -> PdNode {
        debug_assert!(v.j < v.k, "nav_child on a leaf");
        let step = v.step();
        if bit == self.dirs.get(step) {
            // Heavy: next step of the same path — consecutive directory
            // entries, no skeleton probe.
            self.make_node(v.pd, v.j + 1, v.step_base, v.k)
        } else {
            // Light: jump to the child path hanging off this step.
            let c = step + 1;
            let (base, k) = self.skeleton.node(c);
            self.make_node(c, 0, base, k)
        }
    }

    #[inline]
    fn nav_label_len(&self, v: PdNode) -> usize {
        v.lab_len as usize
    }

    #[inline]
    fn nav_label_bit(&self, v: PdNode, i: usize) -> bool {
        debug_assert!((i as u64) < v.lab_len);
        self.labels.get(v.lab_start as usize + i)
    }

    #[inline]
    fn nav_label_lcp(&self, v: PdNode, s: BitStr<'_>) -> usize {
        self.label_view(&v).lcp(&s)
    }

    #[inline]
    fn nav_label_append(&self, v: PdNode, out: &mut BitString) {
        out.push_str(self.label_view(&v));
    }

    #[inline]
    fn nav_bv_len(&self, v: PdNode) -> usize {
        debug_assert!(v.j < v.k, "nav_bv_len on a leaf");
        v.seg_len as usize
    }

    #[inline]
    fn nav_bv_get(&self, v: PdNode, i: usize) -> bool {
        debug_assert!((i as u64) < v.seg_len);
        self.bvs.get(v.seg_start as usize + i)
    }

    #[inline]
    fn nav_bv_rank(&self, v: PdNode, bit: bool, i: usize) -> usize {
        debug_assert!((i as u64) <= v.seg_len);
        let r1 = self.bvs.rank1(v.seg_start as usize + i) - v.ones_before as usize;
        if bit {
            r1
        } else {
            i - r1
        }
    }

    #[inline]
    fn nav_bv_get_rank(&self, v: PdNode, i: usize) -> (bool, usize) {
        debug_assert!((i as u64) < v.seg_len);
        let (bit, r1) = self.bvs.get_rank1(v.seg_start as usize + i);
        let r1 = r1 - v.ones_before as usize;
        if bit {
            (true, r1)
        } else {
            (false, i - r1)
        }
    }

    #[inline]
    fn nav_bv_select(&self, v: PdNode, bit: bool, k: usize) -> Option<usize> {
        let s = v.seg_start as usize;
        let before = if bit {
            v.ones_before as usize
        } else {
            s - v.ones_before as usize
        };
        let p = self.bvs.select(bit, before + k)?;
        (p < s + v.seg_len as usize).then(|| p - s)
    }

    #[inline]
    fn nav_key(&self, v: PdNode) -> usize {
        // The global label-entry id: unique per binary node.
        v.step_base + v.pd + v.j
    }

    fn nav_access_batch(&self, positions: &[usize]) -> Vec<BitString> {
        crate::pd_batch::access_batch(self, positions)
    }

    fn nav_rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
        crate::pd_batch::rank_batch(self, queries)
    }

    fn nav_select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>> {
        crate::pd_batch::select_batch(self, queries)
    }

    fn nav_count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize> {
        crate::pd_batch::count_prefix_batch(self, prefixes)
    }

    // Scalar overrides: the cursor descent of `pd_scalar` (heavy steps are
    // directory-cursor advances, light jumps one overlapped probe round,
    // rank/select chains prefetched from the structural descent).

    fn nav_access(&self, pos: usize) -> BitString {
        crate::pd_scalar::access(self, pos)
    }

    fn nav_rank(&self, s: BitStr<'_>, pos: usize) -> usize {
        crate::pd_scalar::rank(self, s, pos)
    }

    fn nav_select(&self, s: BitStr<'_>, idx: usize) -> Option<usize> {
        crate::pd_scalar::select(self, s, idx)
    }

    fn nav_count(&self, s: BitStr<'_>) -> usize {
        crate::pd_scalar::count(self, s)
    }

    fn nav_count_prefix(&self, p: BitStr<'_>) -> usize {
        crate::pd_scalar::count_prefix(self, p)
    }
}

// --- persistence -------------------------------------------------------------

/// Section tags of a path-decomposed-trie archive.
mod sec {
    pub const META: u32 = 0;
    pub const SKELETON: u32 = 1;
    pub const LABELS: u32 = 2;
    pub const LABEL_BOUNDS: u32 = 3;
    pub const DIRS: u32 = 4;
    pub const BVS: u32 = 5;
    pub const BV_BOUNDS: u32 = 6;
    pub const BV_ONES: u32 = 7;
}

fn push_section<T: Persist>(w: &mut ArchiveWriter, tag: u32, value: &T) {
    let mut payload = Vec::new();
    value.encode(&mut payload);
    w.section(tag, payload);
}

fn read_section<T: Persist>(a: &Archive, tag: u32) -> Result<T, LoadError> {
    let mut r = a.section(tag)?;
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

impl PathDecompTrie {
    /// Serializes to a versioned archive: one section per succinct
    /// component, each individually checksummed (see [`wt_bits::persist`]).
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut w = ArchiveWriter::new(kind::PATH_DECOMP);
        w.section(
            sec::META,
            vec![
                self.n as u64,
                self.nh0_bits.to_bits(),
                self.root_label_len as u64,
            ],
        );
        push_section(&mut w, sec::SKELETON, &self.skeleton);
        push_section(&mut w, sec::LABELS, &self.labels);
        push_section(&mut w, sec::LABEL_BOUNDS, &self.label_bounds);
        push_section(&mut w, sec::DIRS, &self.dirs);
        push_section(&mut w, sec::BVS, &self.bvs);
        push_section(&mut w, sec::BV_BOUNDS, &self.bv_bounds);
        push_section(&mut w, sec::BV_ONES, &self.bv_ones);
        w.finish()
    }

    /// Loads an archive written by [`PathDecompTrie::save_bytes`]:
    /// validate-then-view, O(bytes) with zero per-bit work.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, LoadError> {
        let a = Archive::parse(bytes, kind::PATH_DECOMP)?;
        let mut meta = a.section(sec::META)?;
        let n = meta.read_len()?;
        let nh0_bits = meta.read_f64()?;
        let root_label_len = meta.read_len()?;
        meta.finish()?;
        let skeleton: PathSkeleton = read_section(&a, sec::SKELETON)?;
        let labels: RawBitVec = read_section(&a, sec::LABELS)?;
        let label_bounds: EliasFano = read_section(&a, sec::LABEL_BOUNDS)?;
        let dirs: RawBitVec = read_section(&a, sec::DIRS)?;
        let bvs: RrrVector = read_section(&a, sec::BVS)?;
        let bv_bounds: EliasFano = read_section(&a, sec::BV_BOUNDS)?;
        let bv_ones: EliasFano = read_section(&a, sec::BV_ONES)?;
        // Cross-component invariants: O(1) directory probes that pin every
        // index computed on the query path inside bounds.
        let paths = skeleton.n_nodes();
        let steps = skeleton.total_steps();
        if (n == 0) != (paths == 0) {
            return Err(LoadError::Invalid("empty decomposition encoding"));
        }
        if paths > 0 && steps != paths - 1 {
            return Err(LoadError::Invalid("decomposition tree step count"));
        }
        if n < paths {
            return Err(LoadError::Invalid("fewer strings than paths"));
        }
        let label_entries = if paths == 0 { 0 } else { 2 * paths - 1 };
        if label_bounds.len() != label_entries + 1 {
            return Err(LoadError::Invalid("label delimiter count"));
        }
        if labels.len() as u64 != label_bounds.get(label_entries) {
            return Err(LoadError::Invalid("label concatenation length"));
        }
        if root_label_len > labels.len() {
            return Err(LoadError::Invalid("root label length"));
        }
        if dirs.len() != steps {
            return Err(LoadError::Invalid("direction bit count"));
        }
        if bv_bounds.len() != steps + 1 || bv_ones.len() != steps + 1 {
            return Err(LoadError::Invalid("bitvector delimiter count"));
        }
        if bvs.len() as u64 != bv_bounds.get(steps) {
            return Err(LoadError::Invalid("bitvector concatenation length"));
        }
        if bvs.count_ones() as u64 != bv_ones.get(steps) {
            return Err(LoadError::Invalid("bitvector ones directory"));
        }
        if !nh0_bits.is_finite() || nh0_bits < 0.0 {
            return Err(LoadError::Invalid("entropy metadata"));
        }
        Ok(PathDecompTrie {
            n,
            skeleton,
            labels,
            label_bounds,
            dirs,
            bvs,
            bv_bounds,
            bv_ones,
            nh0_bits,
            root_label_len,
        })
    }

    /// [`PathDecompTrie::save_bytes`] to a file, atomically.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        wt_bits::write_atomic(&wt_bits::FsStorage, path.as_ref(), &self.save_bytes())
    }

    /// [`PathDecompTrie::load_bytes`] from a file; errors are tagged with
    /// the offending path ([`LoadError::InFile`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, LoadError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| LoadError::from(e).in_file(path))?;
        Self::load_bytes(&bytes).map_err(|e| e.in_file(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::SeqIndex;

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    /// The paper's Figure 2 sequence.
    fn figure2_seq() -> Vec<BitString> {
        ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
            .iter()
            .map(|s| bs(s))
            .collect()
    }

    #[test]
    fn figure2_binary_views_match_wavelet_trie() {
        let seq = figure2_seq();
        let wt = WaveletTrie::build(&seq).unwrap();
        let pd = PathDecompTrie::from_static(&wt);
        assert_eq!(pd.len(), 7);
        assert_eq!(pd.distinct_len(), 4);
        assert_eq!(pd.n_paths(), 4);
        // Root binary node: α = "0", β = 0010101.
        let root = pd.nav_root().unwrap();
        let mut label = BitString::new();
        pd.nav_label_append(root, &mut label);
        assert_eq!(label.to_string(), "0");
        let beta: String = (0..pd.nav_bv_len(root))
            .map(|i| if pd.nav_bv_get(root, i) { '1' } else { '0' })
            .collect();
        assert_eq!(beta, "0010101");
        // 0100 occurs 3/7 times: branch 1 at the root is light (3 ≤ 4), so
        // the root path goes left.
        assert!(!pd.dirs.get(0));
        for (i, s) in seq.iter().enumerate() {
            assert_eq!(&pd.access(i), s, "access({i})");
        }
        for s in &seq {
            assert_eq!(pd.count(s.as_bitstr()), wt.count(s.as_bitstr()));
        }
        assert_eq!(pd.count_prefix(bs("00").as_bitstr()), 4);
        assert_eq!(pd.select_prefix(bs("00").as_bitstr(), 2), Some(3));
    }

    #[test]
    fn from_dynamic_matches_from_static() {
        let mut s = 0xD1CEu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let encode = |v: u64| BitString::from_bits((0..16).rev().map(move |k| (v >> k) & 1 != 0));
        let mut d = crate::dyn_wt::DynamicWaveletTrie::new();
        for _ in 0..800 {
            d.append(encode(next() % 4000).as_bitstr()).unwrap();
        }
        let wt = d.freeze();
        let a = PathDecompTrie::from_static(&wt);
        let b = PathDecompTrie::from_dynamic(&d);
        let c = PathDecompTrie::from_static_with_threads(&wt, 4);
        assert_eq!(a.save_bytes(), b.save_bytes(), "static vs dynamic source");
        assert_eq!(a.save_bytes(), c.save_bytes(), "serial vs threaded");
        for i in (0..800).step_by(37) {
            assert_eq!(a.access(i), wt.access(i), "access({i})");
        }
    }

    #[test]
    fn empty_and_singletons() {
        let empty = PathDecompTrie::build::<BitString>(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.distinct_len(), 0);
        assert_eq!(empty.rank(bs("01").as_bitstr(), 0), 0);
        assert_eq!(empty.select(bs("01").as_bitstr(), 0), None);
        let one = PathDecompTrie::build(&vec![bs("1010"); 5]).unwrap();
        assert_eq!(one.len(), 5);
        assert_eq!(one.n_paths(), 1);
        assert_eq!(one.access(3).to_string(), "1010");
        assert_eq!(one.rank(bs("1010").as_bitstr(), 4), 4);
        assert_eq!(one.height(), 0);
        // Empty-string singleton.
        let e = PathDecompTrie::build(&[bs("")]).unwrap();
        assert_eq!(e.access(0), bs(""));
    }

    #[test]
    fn round_trips_to_static_and_dynamic() {
        let seq = figure2_seq();
        let wt = WaveletTrie::build(&seq).unwrap();
        let pd = PathDecompTrie::from_static(&wt);
        // PD → static must reproduce the wavelet trie bit-for-bit.
        let back = pd.to_static();
        assert_eq!(back.save_bytes(), wt.save_bytes());
        let back_t = pd.to_static_with_threads(3);
        assert_eq!(back_t.save_bytes(), wt.save_bytes());
        // PD → dynamic stays editable and answers identically.
        let mut melted: crate::dyn_wt::DynamicWaveletTrie = pd.thaw();
        for (i, s) in seq.iter().enumerate() {
            assert_eq!(&melted.access(i), s);
        }
        melted.insert(bs("11").as_bitstr(), 2).unwrap();
        assert_eq!(melted.len(), 8);
        assert_eq!(melted.access(2), bs("11"));
    }

    #[test]
    fn persist_round_trip_and_rejects() {
        let seq: Vec<BitString> = (0..300u32)
            .map(|i| BitString::from_bits((0..14).rev().map(move |k| ((i * 131) >> k) & 1 != 0)))
            .collect();
        let pd = PathDecompTrie::build(&seq).unwrap();
        let bytes = pd.save_bytes();
        let back = PathDecompTrie::load_bytes(&bytes).unwrap();
        for i in (0..seq.len()).step_by(17) {
            assert_eq!(back.access(i), pd.access(i));
        }
        assert_eq!(back.save_bytes(), bytes);
        // A wavelet-trie archive must be rejected by kind.
        let wt = WaveletTrie::build(&seq).unwrap();
        assert!(matches!(
            PathDecompTrie::load_bytes(&wt.save_bytes()),
            Err(LoadError::WrongKind { .. })
        ));
        // Truncation must be detected.
        assert!(PathDecompTrie::load_bytes(&bytes[..bytes.len() - 9]).is_err());
        // Flipped payload bits must be caught by section checksums.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(PathDecompTrie::load_bytes(&bad).is_err());
    }

    #[test]
    fn space_breakdown_sane() {
        let seq: Vec<BitString> = (0..500u32)
            .map(|i| {
                BitString::from_bits(
                    (0..20)
                        .rev()
                        .map(move |k| ((i as u64 * 2654435761) >> k) & 1 != 0),
                )
            })
            .collect();
        let wt = WaveletTrie::build(&seq).unwrap();
        let pd = PathDecompTrie::from_static(&wt);
        let sp = pd.space_breakdown();
        assert_eq!(sp.n, 500);
        assert_eq!(sp.distinct, wt.space_breakdown().distinct);
        assert_eq!(sp.hn_bits, wt.space_breakdown().hn_bits);
        assert!((sp.nh0_bits - wt.nh0_bits()).abs() < 1e-6);
        assert!(sp.total_bits > 0);
        // Same order of magnitude as the wavelet trie (same payload, the
        // directories differ).
        let wt_bits = wt.space_breakdown().total_bits as f64;
        assert!((sp.total_bits as f64) < 2.0 * wt_bits + 4096.0);
    }
}
