//! Navigation abstraction shared by every Wavelet Trie variant, and the
//! query algorithms of §3 (Lemmas 3.2/3.3) implemented once on top of it.
//!
//! The static structure addresses nodes through DFUDS positions; the
//! dynamic ones through node references. [`TrieNav`] hides the difference so
//! `Access`, `Rank`, `Select`, `RankPrefix`, `SelectPrefix` and all of §5's
//! range algorithms have a single implementation, tested across backends.

use wt_trie::{BitStr, BitString};

/// Read-only navigation over a Wavelet Trie.
///
/// Internal nodes expose a label, a bitvector and two children; leaves only
/// a label (Definition 3.1).
pub trait TrieNav {
    /// Node handle (copyable; borrows from `self`).
    type Node<'a>: Copy
    where
        Self: 'a;

    /// The root, or `None` if the sequence is empty.
    fn nav_root(&self) -> Option<Self::Node<'_>>;

    /// Sequence length `n`.
    fn nav_len(&self) -> usize;

    /// Whether `v` is a leaf.
    fn nav_is_leaf<'a>(&'a self, v: Self::Node<'a>) -> bool;

    /// Child of internal node `v` on branch `bit`.
    fn nav_child<'a>(&'a self, v: Self::Node<'a>, bit: bool) -> Self::Node<'a>;

    /// Length of the label α of `v`.
    fn nav_label_len<'a>(&'a self, v: Self::Node<'a>) -> usize;

    /// Bit `i` of the label of `v`.
    fn nav_label_bit<'a>(&'a self, v: Self::Node<'a>, i: usize) -> bool;

    /// Longest common prefix length between the label of `v` and `s`.
    fn nav_label_lcp<'a>(&'a self, v: Self::Node<'a>, s: BitStr<'_>) -> usize;

    /// Appends the label of `v` to `out`.
    fn nav_label_append<'a>(&'a self, v: Self::Node<'a>, out: &mut BitString);

    /// Length of the bitvector β of internal node `v` (= size of the
    /// subsequence represented by `v`).
    fn nav_bv_len<'a>(&'a self, v: Self::Node<'a>) -> usize;

    /// Bit `i` of β.
    fn nav_bv_get<'a>(&'a self, v: Self::Node<'a>, i: usize) -> bool;

    /// Occurrences of `bit` in `β[0, i)`.
    fn nav_bv_rank<'a>(&'a self, v: Self::Node<'a>, bit: bool, i: usize) -> usize;

    /// `(β[i], rank_{β[i]}(β, i))` in one probe — the position-mapping step
    /// of every Access descent. Backends whose bitvectors can fuse the two
    /// queries override this.
    fn nav_bv_get_rank<'a>(&'a self, v: Self::Node<'a>, i: usize) -> (bool, usize) {
        let b = self.nav_bv_get(v, i);
        (b, self.nav_bv_rank(v, b, i))
    }

    /// Position of the `k`-th `bit` in β.
    fn nav_bv_select<'a>(&'a self, v: Self::Node<'a>, bit: bool, k: usize) -> Option<usize>;

    /// A key identifying `v` uniquely while the structure is unchanged
    /// (used by the sequential iterator's cursor table).
    fn nav_key<'a>(&'a self, v: Self::Node<'a>) -> usize;

    // --- batched queries ---------------------------------------------------
    //
    // Hooks behind the `SeqIndex::*_batch` surface. The defaults run the
    // scalar algorithms in a loop; backends whose descents are chains of
    // cache misses (the static trie) override them with a software-pipelined
    // group descent that advances all lanes level-by-level in lockstep.

    /// Batched `Access`: the strings at `positions`, in order.
    fn nav_access_batch(&self, positions: &[usize]) -> Vec<BitString>
    where
        Self: Sized,
    {
        positions.iter().map(|&p| access(self, p)).collect()
    }

    /// Batched `Rank` over `(string, position)` queries.
    fn nav_rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize>
    where
        Self: Sized,
    {
        queries.iter().map(|&(s, pos)| rank(self, s, pos)).collect()
    }

    /// Batched `Select` over `(string, occurrence index)` queries.
    fn nav_select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>>
    where
        Self: Sized,
    {
        queries
            .iter()
            .map(|&(s, idx)| select(self, s, idx))
            .collect()
    }

    /// Batched `CountPrefix`.
    fn nav_count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize>
    where
        Self: Sized,
    {
        prefixes.iter().map(|&p| count_prefix(self, p)).collect()
    }

    // --- scalar queries ----------------------------------------------------
    //
    // Hooks behind the scalar `SeqIndex` surface. The defaults run the
    // generic descent; backends with a cheaper specialized walk (the
    // path-decomposed trie's cursor descent) override them. Every override
    // must answer bit-identically to the generic algorithms.

    /// Scalar `Access(pos)`.
    fn nav_access(&self, pos: usize) -> BitString
    where
        Self: Sized,
    {
        access(self, pos)
    }

    /// Scalar `Rank(s, pos)`.
    fn nav_rank(&self, s: BitStr<'_>, pos: usize) -> usize
    where
        Self: Sized,
    {
        rank(self, s, pos)
    }

    /// Scalar `Select(s, idx)`.
    fn nav_select(&self, s: BitStr<'_>, idx: usize) -> Option<usize>
    where
        Self: Sized,
    {
        select(self, s, idx)
    }

    /// Scalar `Count(s)`.
    fn nav_count(&self, s: BitStr<'_>) -> usize
    where
        Self: Sized,
    {
        count(self, s)
    }

    /// Scalar `CountPrefix(p)`.
    fn nav_count_prefix(&self, p: BitStr<'_>) -> usize
    where
        Self: Sized,
    {
        count_prefix(self, p)
    }
}

/// Entries a descent path keeps on the stack before spilling to the heap.
/// Covers every realistic trie height (one entry per *branching* ancestor),
/// so queries are allocation-free in the common case.
const INLINE_PATH: usize = 40;

/// The (ancestor, branch-bit) trail of a root-to-node descent.
///
/// A stack-allocated inline buffer with heap spill: `descend_exact` /
/// `descend_prefix` run once per query, and the per-query `Vec` they used
/// to build showed up as the last allocation in every static rank/select.
/// The inline slots stay uninitialised until written (`len` tracks
/// occupancy), so constructing a path costs nothing.
pub(crate) struct DescentPath<'a, T: TrieNav + 'a> {
    inline: [std::mem::MaybeUninit<(T::Node<'a>, bool)>; INLINE_PATH],
    len: usize,
    spill: Vec<(T::Node<'a>, bool)>,
}

impl<'a, T: TrieNav + 'a> DescentPath<'a, T> {
    pub(crate) fn new() -> Self {
        DescentPath {
            inline: [std::mem::MaybeUninit::uninit(); INLINE_PATH],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Entry `k`, which must be `< self.len`.
    #[inline]
    fn inline_entry(&self, k: usize) -> (T::Node<'a>, bool) {
        debug_assert!(k < self.len);
        // SAFETY: `len` only grows past a slot in `push` after writing it,
        // and entries are `Copy` (no drop obligations).
        unsafe { self.inline[k].assume_init() }
    }

    #[inline]
    pub(crate) fn push(&mut self, v: T::Node<'a>, b: bool) {
        if self.len < INLINE_PATH {
            self.inline[self.len].write((v, b));
            self.len += 1;
        } else {
            self.spill.push((v, b));
        }
    }

    /// The deepest (ancestor, branch) pair, if any.
    #[inline]
    pub(crate) fn last(&self) -> Option<(T::Node<'a>, bool)> {
        self.spill.last().copied().or(if self.len > 0 {
            Some(self.inline_entry(self.len - 1))
        } else {
            None
        })
    }

    /// Root-to-leaf order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (T::Node<'a>, bool)> + '_ {
        (0..self.len)
            .map(|k| self.inline_entry(k))
            .chain(self.spill.iter().copied())
    }

    /// Leaf-to-root order.
    pub(crate) fn iter_rev(&self) -> impl Iterator<Item = (T::Node<'a>, bool)> + '_ {
        self.spill
            .iter()
            .rev()
            .copied()
            .chain((0..self.len).rev().map(|k| self.inline_entry(k)))
    }
}

/// Result of descending towards a query string.
pub(crate) enum Descent<'a, T: TrieNav + 'a> {
    /// The string/prefix is represented: node, mapped position bounds
    /// unused here; path of (ancestor, branch bit) from root.
    Found {
        node: T::Node<'a>,
        path: DescentPath<'a, T>,
    },
    /// No stored string matches.
    Absent,
}

/// `Access(pos)` — Lemma 3.2: O(h_s) bitvector ranks.
pub(crate) fn access<T: TrieNav>(t: &T, pos: usize) -> BitString {
    assert!(pos < t.nav_len(), "Access position out of bounds");
    let mut out = BitString::new();
    let mut v = t.nav_root().expect("nonempty");
    let mut p = pos;
    loop {
        t.nav_label_append(v, &mut out);
        if t.nav_is_leaf(v) {
            return out;
        }
        let (b, mapped) = t.nav_bv_get_rank(v, p);
        out.push(b);
        p = mapped;
        v = t.nav_child(v, b);
    }
}

/// Descends consuming the *exact* string `s`; `Found` iff `s ∈ Sset`.
pub(crate) fn descend_exact<'a, T: TrieNav>(t: &'a T, s: BitStr<'_>) -> Descent<'a, T> {
    let mut v = match t.nav_root() {
        Some(v) => v,
        None => return Descent::Absent,
    };
    let mut delta = 0usize;
    let mut path = DescentPath::new();
    loop {
        let rest = s.suffix(delta);
        let l = t.nav_label_lcp(v, rest);
        if l < t.nav_label_len(v) {
            return Descent::Absent;
        }
        delta += l;
        if t.nav_is_leaf(v) {
            return if delta == s.len() {
                Descent::Found { node: v, path }
            } else {
                Descent::Absent
            };
        }
        if delta == s.len() {
            // s is a proper prefix of every string below: not an element.
            return Descent::Absent;
        }
        let b = s.get(delta);
        delta += 1;
        path.push(v, b);
        v = t.nav_child(v, b);
    }
}

/// Descends consuming the *prefix* `p`; `Found` gives the node `n_p` of
/// Lemma 3.3 whose subtree holds exactly the strings with prefix `p`.
pub(crate) fn descend_prefix<'a, T: TrieNav>(t: &'a T, p: BitStr<'_>) -> Descent<'a, T> {
    let mut v = match t.nav_root() {
        Some(v) => v,
        None => return Descent::Absent,
    };
    let mut delta = 0usize;
    let mut path = DescentPath::new();
    loop {
        let rest = p.suffix(delta);
        let l = t.nav_label_lcp(v, rest);
        delta += l;
        if delta == p.len() {
            // p exhausted (possibly mid-label): subtree of v is the match.
            return Descent::Found { node: v, path };
        }
        if l < t.nav_label_len(v) || t.nav_is_leaf(v) {
            return Descent::Absent;
        }
        let b = p.get(delta);
        delta += 1;
        path.push(v, b);
        v = t.nav_child(v, b);
    }
}

/// Maps a position downward through the recorded path.
fn map_down<'a, T: TrieNav>(t: &'a T, path: &DescentPath<'a, T>, pos: usize) -> usize {
    let mut p = pos;
    for (v, b) in path.iter() {
        p = t.nav_bv_rank(v, b, p);
    }
    p
}

/// `Rank(s, pos)` — occurrences of the exact string `s` in positions `[0, pos)`.
pub(crate) fn rank<T: TrieNav>(t: &T, s: BitStr<'_>, pos: usize) -> usize {
    assert!(pos <= t.nav_len(), "Rank position out of bounds");
    match descend_exact(t, s) {
        Descent::Absent => 0,
        Descent::Found { path, .. } => map_down(t, &path, pos),
    }
}

/// `RankPrefix(p, pos)` — strings with prefix `p` in positions `[0, pos)`
/// (Lemma 3.3).
pub(crate) fn rank_prefix<T: TrieNav>(t: &T, p: BitStr<'_>, pos: usize) -> usize {
    assert!(pos <= t.nav_len(), "RankPrefix position out of bounds");
    match descend_prefix(t, p) {
        Descent::Absent => 0,
        Descent::Found { path, .. } => map_down(t, &path, pos),
    }
}

/// Walks a mapped index back up through the path with selects.
fn map_up<'a, T: TrieNav>(t: &'a T, path: &DescentPath<'a, T>, idx: usize) -> Option<usize> {
    let mut i = idx;
    for (v, b) in path.iter_rev() {
        i = t.nav_bv_select(v, b, i)?;
    }
    Some(i)
}

/// Number of occurrences of the subtree rooted at `node` (given its path).
fn subtree_count<'a, T: TrieNav>(t: &'a T, node: T::Node<'a>, path: &DescentPath<'a, T>) -> usize {
    if !t.nav_is_leaf(node) {
        t.nav_bv_len(node)
    } else {
        match path.last() {
            Some((parent, b)) => t.nav_bv_rank(parent, b, t.nav_bv_len(parent)),
            None => t.nav_len(), // root leaf: the whole sequence
        }
    }
}

/// `Select(s, idx)` — position of the `idx`-th (0-based) occurrence of `s`.
pub(crate) fn select<T: TrieNav>(t: &T, s: BitStr<'_>, idx: usize) -> Option<usize> {
    match descend_exact(t, s) {
        Descent::Absent => None,
        Descent::Found { node, path } => {
            if idx >= subtree_count(t, node, &path) {
                return None;
            }
            map_up(t, &path, idx)
        }
    }
}

/// `SelectPrefix(p, idx)` — position of the `idx`-th string with prefix `p`.
pub(crate) fn select_prefix<T: TrieNav>(t: &T, p: BitStr<'_>, idx: usize) -> Option<usize> {
    match descend_prefix(t, p) {
        Descent::Absent => None,
        Descent::Found { node, path } => {
            if idx >= subtree_count(t, node, &path) {
                return None;
            }
            map_up(t, &path, idx)
        }
    }
}

/// Whether `s` can join the sequence without violating prefix-freeness
/// (§3): `s` must not be a proper prefix of a stored string, and no stored
/// string may be a proper prefix of `s`. Exact duplicates are admitted.
/// One descent, O(|s| + h_s).
pub(crate) fn admits<T: TrieNav>(t: &T, s: BitStr<'_>) -> bool {
    let mut v = match t.nav_root() {
        Some(v) => v,
        None => return true,
    };
    let mut delta = 0usize;
    loop {
        let rest = s.suffix(delta);
        let l = t.nav_label_lcp(v, rest);
        if l < t.nav_label_len(v) {
            // Mismatch (or exhaustion of s) strictly inside the label: fine
            // unless s ends here, which would make it a proper prefix.
            return delta + l < s.len();
        }
        delta += l;
        if t.nav_is_leaf(v) {
            // Reached a stored string: s must equal it exactly.
            return delta == s.len();
        }
        if delta == s.len() {
            // s is a proper prefix of every string below this node.
            return false;
        }
        let b = s.get(delta);
        delta += 1;
        v = t.nav_child(v, b);
    }
}

/// Number of occurrences of `s` in the whole sequence.
pub(crate) fn count<T: TrieNav>(t: &T, s: BitStr<'_>) -> usize {
    rank(t, s, t.nav_len())
}

/// Number of strings with prefix `p` in the whole sequence.
pub(crate) fn count_prefix<T: TrieNav>(t: &T, p: BitStr<'_>) -> usize {
    rank_prefix(t, p, t.nav_len())
}

/// Maximum number of internal nodes on any root-to-leaf path (trie height).
pub(crate) fn height<T: TrieNav>(t: &T) -> usize {
    fn rec<'a, T: TrieNav>(t: &'a T, v: T::Node<'a>) -> usize {
        if t.nav_is_leaf(v) {
            0
        } else {
            1 + rec(t, t.nav_child(v, false)).max(rec(t, t.nav_child(v, true)))
        }
    }
    t.nav_root().map_or(0, |r| rec(t, r))
}

/// Sum of all bitvector lengths = `h̃·n` (Definition 3.4 discussion).
pub(crate) fn total_bitvector_bits<T: TrieNav>(t: &T) -> usize {
    fn rec<'a, T: TrieNav>(t: &'a T, v: T::Node<'a>) -> usize {
        if t.nav_is_leaf(v) {
            0
        } else {
            t.nav_bv_len(v) + rec(t, t.nav_child(v, false)) + rec(t, t.nav_child(v, true))
        }
    }
    t.nav_root().map_or(0, |r| rec(t, r))
}

/// Number of distinct strings (leaves).
pub(crate) fn distinct_count<T: TrieNav>(t: &T) -> usize {
    fn rec<'a, T: TrieNav>(t: &'a T, v: T::Node<'a>) -> usize {
        if t.nav_is_leaf(v) {
            1
        } else {
            rec(t, t.nav_child(v, false)) + rec(t, t.nav_child(v, true))
        }
    }
    t.nav_root().map_or(0, |r| rec(t, r))
}
