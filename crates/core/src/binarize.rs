//! Binarization: mapping application alphabets onto binary strings.
//!
//! §2/§3 of the paper: the Wavelet Trie stores *binary* strings whose set is
//! *prefix-free*; "strings from larger alphabets can be binarized" and "any
//! set of strings can be made prefix-free by appending a terminator symbol".
//! A [`Coder`] realizes both requirements.

use wt_trie::{BitStr, BitString};

/// A reversible encoding of byte strings into prefix-free binary strings.
pub trait Coder {
    /// Encodes a full string (with terminator): the result set is prefix-free.
    fn encode(&self, s: &[u8]) -> BitString;

    /// Encodes a *prefix* (no terminator): `t` starts with byte-prefix `p`
    /// iff `encode(t)` starts with `encode_prefix(p)`.
    fn encode_prefix(&self, p: &[u8]) -> BitString;

    /// Decodes a full encoded string back to bytes.
    ///
    /// # Panics
    /// If `b` is not a valid encoding.
    fn decode(&self, b: BitStr<'_>) -> Vec<u8>;

    /// Decodes a (possibly terminator-less) prefix encoding: complete
    /// encoded bytes are decoded, a trailing terminator is accepted, and
    /// decoding stops at the end of input. Used by the §5 stop-early
    /// prefix enumeration.
    fn decode_prefix(&self, b: BitStr<'_>) -> Vec<u8>;
}

/// The default coder: each byte `b` becomes `1·b₇…b₀` (marker bit + 8 data
/// bits MSB-first) and the string ends with a single `0` terminator.
///
/// Properties (both required by §3):
/// * **prefix-free**: the terminator `0` can never be the start of another
///   encoded byte (those start with `1`);
/// * **order-preserving**: comparing encodings bit-wise equals comparing the
///   byte strings lexicographically (with prefixes sorting first).
///
/// Cost: `9·len + 1` bits per string (12.5% over raw).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NinthBitCoder;

impl Coder for NinthBitCoder {
    fn encode(&self, s: &[u8]) -> BitString {
        let mut out = self.encode_prefix(s);
        out.push(false);
        out
    }

    fn encode_prefix(&self, p: &[u8]) -> BitString {
        let mut out = BitString::new();
        for &byte in p {
            out.push(true);
            for k in (0..8).rev() {
                out.push((byte >> k) & 1 != 0);
            }
        }
        out
    }

    fn decode(&self, b: BitStr<'_>) -> Vec<u8> {
        let mut out = Vec::with_capacity(b.len() / 9);
        let mut i = 0usize;
        loop {
            assert!(i < b.len(), "truncated encoding: missing terminator");
            if !b.get(i) {
                assert_eq!(i + 1, b.len(), "trailing bits after terminator");
                return out;
            }
            assert!(i + 9 <= b.len(), "truncated encoded byte");
            let mut byte = 0u8;
            for k in 0..8 {
                byte = (byte << 1) | b.get(i + 1 + k) as u8;
            }
            out.push(byte);
            i += 9;
        }
    }

    fn decode_prefix(&self, b: BitStr<'_>) -> Vec<u8> {
        let mut out = Vec::with_capacity(b.len() / 9);
        let mut i = 0usize;
        while i + 9 <= b.len() && b.get(i) {
            let mut byte = 0u8;
            for k in 0..8 {
                byte = (byte << 1) | b.get(i + 1 + k) as u8;
            }
            out.push(byte);
            i += 9;
        }
        out
    }
}

/// Fixed-width integer binarization, MSB-first: order-preserving over
/// `u64` values `< 2^width`; all encodings share one length, hence
/// prefix-free. Used when the values are numeric (§6 discussion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedWidthMsb {
    /// Bits per value (1..=64).
    pub width: u32,
}

impl FixedWidthMsb {
    /// Creates the coder.
    ///
    /// # Panics
    /// If `width` is 0 or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width));
        FixedWidthMsb { width }
    }

    /// Encodes `x < 2^width`.
    pub fn encode_u64(&self, x: u64) -> BitString {
        debug_assert!(self.width == 64 || x < (1u64 << self.width));
        BitString::from_bits((0..self.width).rev().map(|k| (x >> k) & 1 != 0))
    }

    /// Decodes a full-width encoding.
    pub fn decode_u64(&self, b: BitStr<'_>) -> u64 {
        assert_eq!(b.len(), self.width as usize, "width mismatch");
        let mut x = 0u64;
        for i in 0..b.len() {
            x = (x << 1) | b.get(i) as u64;
        }
        x
    }
}

/// Fixed-width integer binarization, **LSB-first** — the hash layout of §6
/// ("The result of the hash function is considered as a binary string of
/// ⌈log u⌉ bits written LSB-to-MSB").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedWidthLsb {
    /// Bits per value (1..=64).
    pub width: u32,
}

impl FixedWidthLsb {
    /// Creates the coder.
    ///
    /// # Panics
    /// If `width` is 0 or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width));
        FixedWidthLsb { width }
    }

    /// Encodes `x < 2^width`.
    pub fn encode_u64(&self, x: u64) -> BitString {
        debug_assert!(self.width == 64 || x < (1u64 << self.width));
        BitString::from_bits((0..self.width).map(|k| (x >> k) & 1 != 0))
    }

    /// Decodes a full-width encoding.
    pub fn decode_u64(&self, b: BitStr<'_>) -> u64 {
        assert_eq!(b.len(), self.width as usize, "width mismatch");
        let mut x = 0u64;
        for i in 0..b.len() {
            x |= (b.get(i) as u64) << i;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninth_bit_roundtrip() {
        let c = NinthBitCoder;
        for s in [
            &b""[..],
            b"a",
            b"abc",
            b"http://example.com/a/b",
            b"\x00\xff\x80",
        ] {
            let e = c.encode(s);
            assert_eq!(e.len(), 9 * s.len() + 1);
            assert_eq!(c.decode(e.as_bitstr()), s);
        }
    }

    #[test]
    fn ninth_bit_prefix_free() {
        let c = NinthBitCoder;
        let strs: [&[u8]; 5] = [b"", b"a", b"ab", b"abc", b"b"];
        for (i, a) in strs.iter().enumerate() {
            for (j, b) in strs.iter().enumerate() {
                if i == j {
                    continue;
                }
                let ea = c.encode(a);
                let eb = c.encode(b);
                assert!(
                    !ea.as_bitstr().starts_with(&eb.as_bitstr()),
                    "{a:?} encoding extends {b:?}"
                );
            }
        }
    }

    #[test]
    fn ninth_bit_order_preserving() {
        let c = NinthBitCoder;
        let mut strs: Vec<&[u8]> = vec![b"", b"a", b"aa", b"ab", b"b", b"ba", b"\xff", b"0"];
        strs.sort();
        let encoded: Vec<BitString> = strs.iter().map(|s| c.encode(s)).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn ninth_bit_prefix_encoding_matches() {
        let c = NinthBitCoder;
        let full = c.encode(b"hello/world");
        let pref = c.encode_prefix(b"hello/");
        assert!(full.as_bitstr().starts_with(&pref.as_bitstr()));
        let other = c.encode(b"hellx");
        assert!(!other.as_bitstr().starts_with(&pref.as_bitstr()));
        // a string equal to the prefix also matches (its encoding continues
        // with the terminator, which is still an extension)
        let eq = c.encode(b"hello/");
        assert!(eq.as_bitstr().starts_with(&pref.as_bitstr()));
    }

    #[test]
    fn fixed_width_roundtrips() {
        let msb = FixedWidthMsb::new(17);
        let lsb = FixedWidthLsb::new(17);
        for x in [0u64, 1, 2, 100, (1 << 17) - 1] {
            assert_eq!(msb.decode_u64(msb.encode_u64(x).as_bitstr()), x);
            assert_eq!(lsb.decode_u64(lsb.encode_u64(x).as_bitstr()), x);
        }
        let msb64 = FixedWidthMsb::new(64);
        assert_eq!(
            msb64.decode_u64(msb64.encode_u64(u64::MAX).as_bitstr()),
            u64::MAX
        );
    }

    #[test]
    fn fixed_width_msb_order_preserving() {
        let msb = FixedWidthMsb::new(12);
        let vals = [0u64, 1, 5, 100, 2047, 4095];
        for w in vals.windows(2) {
            assert!(msb.encode_u64(w[0]) < msb.encode_u64(w[1]));
        }
    }

    #[test]
    fn lsb_matches_paper_layout() {
        // §6: LSB-to-MSB. x = 0b110 at width 3 → bits 0,1,1.
        let lsb = FixedWidthLsb::new(3);
        let e = lsb.encode_u64(0b110);
        assert_eq!(e.to_string(), "011");
    }
}
