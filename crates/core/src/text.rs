//! Ergonomic byte-string / UTF-8 facing wrappers.
//!
//! The Wavelet Trie proper works on binary strings; these types pair a
//! backend with the default [`NinthBitCoder`] so applications can store
//! `&str`/`&[u8]` values directly — the use cases of §1 (query logs, URL
//! logs, database columns).
//!
//! * [`IndexedStrings`] — static ([`WaveletTrie`]);
//! * [`AppendLog`] — append-only ([`AppendWaveletTrie`]), the "compressing
//!   and indexing a sequential log on the fly" scenario;
//! * [`DynamicStrings`] — fully dynamic ([`DynamicWaveletTrie`]), the
//!   database-column scenario.

use crate::binarize::{Coder, NinthBitCoder};
use crate::dyn_wt::{AppendWaveletTrie, DynamicWaveletTrie};
use crate::ops::SeqIndex;
use crate::static_wt::WaveletTrie;
use wt_bits::SpaceUsage;
use wt_trie::BitString;

fn decode_owned(coder: &NinthBitCoder, b: &BitString) -> Vec<u8> {
    coder.decode(b.as_bitstr())
}

/// Generates the byte-string query surface of a facade struct with fields
/// `inner` (any [`SeqIndex`]) and `coder` (a copyable
/// [`crate::binarize::Coder`]).
///
/// Exported so downstream crates pairing a new backend with the default
/// coder (e.g. the tiered store's `TieredStrings`) reuse the exact same
/// surface instead of re-typing it. Expansion sites must have
/// [`SeqIndex`] and [`crate::binarize::Coder`] in scope.
#[macro_export]
macro_rules! string_facade_queries {
    () => {
        /// Number of strings stored.
        pub fn len(&self) -> usize {
            self.inner.seq_len()
        }

        /// Whether the sequence is empty.
        pub fn is_empty(&self) -> bool {
            self.inner.seq_is_empty()
        }

        /// Number of distinct strings.
        pub fn distinct_len(&self) -> usize {
            self.inner.distinct_len()
        }

        /// `Access(pos)` as raw bytes.
        pub fn get_bytes(&self, pos: usize) -> Vec<u8> {
            self.coder.decode(self.inner.access(pos).as_bitstr())
        }

        /// `Access(pos)` as UTF-8 (lossy).
        pub fn get_string(&self, pos: usize) -> String {
            String::from_utf8_lossy(&self.get_bytes(pos)).into_owned()
        }

        /// `Rank(s, pos)`: occurrences of `s` before `pos`.
        pub fn rank(&self, s: impl AsRef<[u8]>, pos: usize) -> usize {
            self.inner
                .rank(self.coder.encode(s.as_ref()).as_bitstr(), pos)
        }

        /// `Select(s, idx)`.
        pub fn select(&self, s: impl AsRef<[u8]>, idx: usize) -> Option<usize> {
            self.inner
                .select(self.coder.encode(s.as_ref()).as_bitstr(), idx)
        }

        /// `RankPrefix(p, pos)`: strings with byte-prefix `p` before `pos`.
        pub fn rank_prefix(&self, p: impl AsRef<[u8]>, pos: usize) -> usize {
            self.inner
                .rank_prefix(self.coder.encode_prefix(p.as_ref()).as_bitstr(), pos)
        }

        /// `SelectPrefix(p, idx)`.
        pub fn select_prefix(&self, p: impl AsRef<[u8]>, idx: usize) -> Option<usize> {
            self.inner
                .select_prefix(self.coder.encode_prefix(p.as_ref()).as_bitstr(), idx)
        }

        /// Total occurrences of `s`.
        pub fn count(&self, s: impl AsRef<[u8]>) -> usize {
            self.inner.count(self.coder.encode(s.as_ref()).as_bitstr())
        }

        /// Total strings with byte-prefix `p`.
        pub fn count_prefix(&self, p: impl AsRef<[u8]>) -> usize {
            self.inner
                .count_prefix(self.coder.encode_prefix(p.as_ref()).as_bitstr())
        }

        /// Occurrences of `s` in `[l, r)`.
        pub fn range_count(&self, s: impl AsRef<[u8]>, l: usize, r: usize) -> usize {
            self.inner
                .range_count(self.coder.encode(s.as_ref()).as_bitstr(), l, r)
        }

        /// Strings with prefix `p` in `[l, r)`.
        pub fn range_count_prefix(&self, p: impl AsRef<[u8]>, l: usize, r: usize) -> usize {
            self.inner
                .range_count_prefix(self.coder.encode_prefix(p.as_ref()).as_bitstr(), l, r)
        }

        /// Distinct strings in `[l, r)` with counts (§5), as UTF-8 (lossy).
        pub fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(String, usize)> {
            self.inner
                .distinct_in_range(l, r)
                .into_iter()
                .map(|(b, c)| {
                    (
                        String::from_utf8_lossy(&self.coder.decode(b.as_bitstr())).into_owned(),
                        c,
                    )
                })
                .collect()
        }

        /// Distinct strings with byte-prefix `p` in `[l, r)` with counts.
        pub fn distinct_in_range_with_prefix(
            &self,
            p: impl AsRef<[u8]>,
            l: usize,
            r: usize,
        ) -> Vec<(String, usize)> {
            self.inner
                .distinct_in_range_with_prefix(
                    self.coder.encode_prefix(p.as_ref()).as_bitstr(),
                    l,
                    r,
                )
                .into_iter()
                .map(|(b, c)| {
                    (
                        String::from_utf8_lossy(&self.coder.decode(b.as_bitstr())).into_owned(),
                        c,
                    )
                })
                .collect()
        }

        /// Distinct `byte_len`-byte prefixes of the strings in `[l, r)`
        /// with counts (§5 stop-early enumeration — e.g. "the distinct
        /// hostnames in a given time range"). Strings shorter than
        /// `byte_len` are reported whole.
        pub fn distinct_byte_prefixes_in_range(
            &self,
            l: usize,
            r: usize,
            byte_len: usize,
        ) -> Vec<(String, usize)> {
            self.inner
                .distinct_prefixes_in_range(l, r, byte_len * 9)
                .into_iter()
                .map(|(b, c)| {
                    let bytes = self.coder.decode_prefix(b.as_bitstr());
                    (String::from_utf8_lossy(&bytes).into_owned(), c)
                })
                .collect()
        }

        /// Majority string of `[l, r)` (§5), if any.
        pub fn range_majority(&self, l: usize, r: usize) -> Option<(String, usize)> {
            self.inner.range_majority(l, r).map(|(b, c)| {
                (
                    String::from_utf8_lossy(&self.coder.decode(b.as_bitstr())).into_owned(),
                    c,
                )
            })
        }

        /// Strings occurring ≥ `min_count` times in `[l, r)` (§5 heuristic).
        pub fn range_frequent(&self, l: usize, r: usize, min_count: usize) -> Vec<(String, usize)> {
            self.inner
                .range_frequent(l, r, min_count)
                .into_iter()
                .map(|(b, c)| {
                    (
                        String::from_utf8_lossy(&self.coder.decode(b.as_bitstr())).into_owned(),
                        c,
                    )
                })
                .collect()
        }

        /// Sequential iteration over `[l, r)` as UTF-8 (lossy).
        pub fn iter_range(&self, l: usize, r: usize) -> impl Iterator<Item = String> + '_ {
            let coder = self.coder;
            self.inner
                .iter_range_boxed(l, r)
                .map(move |b| String::from_utf8_lossy(&coder.decode(b.as_bitstr())).into_owned())
        }

        /// Batched `Access`: the strings at `positions` as UTF-8 (lossy).
        /// Backends with a batched descent (the static trie, the tiered
        /// store) interleave the lookups so their cache misses overlap;
        /// other backends answer with a scalar loop. Results are always
        /// identical to per-position [`Self::get_string`] calls.
        pub fn get_strings_batch(&self, positions: &[usize]) -> Vec<String> {
            self.inner
                .access_batch(positions)
                .into_iter()
                .map(|b| String::from_utf8_lossy(&self.coder.decode(b.as_bitstr())).into_owned())
                .collect()
        }

        /// Batched total occurrence counts, one per query string.
        pub fn count_batch<S: AsRef<[u8]>>(&self, queries: &[S]) -> Vec<usize> {
            let encoded: Vec<_> = queries
                .iter()
                .map(|s| self.coder.encode(s.as_ref()))
                .collect();
            let q: Vec<_> = encoded
                .iter()
                .map(|b| (b.as_bitstr(), self.inner.seq_len()))
                .collect();
            self.inner.rank_batch(&q)
        }

        /// Batched [`Self::count_prefix`] over byte prefixes.
        pub fn count_prefix_batch<S: AsRef<[u8]>>(&self, prefixes: &[S]) -> Vec<usize> {
            let encoded: Vec<_> = prefixes
                .iter()
                .map(|p| self.coder.encode_prefix(p.as_ref()))
                .collect();
            let q: Vec<_> = encoded.iter().map(|b| b.as_bitstr()).collect();
            self.inner.count_prefix_batch(&q)
        }

        /// Trie height.
        pub fn height(&self) -> usize {
            self.inner.height()
        }

        /// Average height h̃ (Definition 3.4).
        pub fn avg_height(&self) -> f64 {
            self.inner.avg_height()
        }
    };
}

/// Static compressed indexed sequence of byte strings (Theorem 3.7).
#[derive(Clone, Debug)]
pub struct IndexedStrings {
    inner: WaveletTrie,
    coder: NinthBitCoder,
}

impl IndexedStrings {
    /// Builds from any iterator of byte strings.
    pub fn build<I, S>(seq: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let coder = NinthBitCoder;
        let strings: Vec<BitString> = seq.into_iter().map(|s| coder.encode(s.as_ref())).collect();
        let inner = WaveletTrie::build(&strings).expect("NinthBitCoder output is prefix-free");
        IndexedStrings { inner, coder }
    }

    /// The underlying bit-level Wavelet Trie.
    pub fn inner(&self) -> &WaveletTrie {
        &self.inner
    }

    /// Serializes to a versioned `.wt` archive (see [`wt_bits::persist`]).
    /// The byte image is the same as [`WaveletTrie::save_bytes`] apart from
    /// the structure kind in the header, which records that these bit
    /// strings are [`NinthBitCoder`]-encoded bytes.
    pub fn save_bytes(&self) -> Vec<u8> {
        self.inner
            .write_archive(wt_bits::persist::kind::INDEXED_STRINGS)
    }

    /// Loads an archive written by [`IndexedStrings::save_bytes`] —
    /// validate-then-view, no bitvector rebuilds.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, wt_bits::LoadError> {
        Ok(IndexedStrings {
            inner: WaveletTrie::read_archive(bytes, wt_bits::persist::kind::INDEXED_STRINGS)?,
            coder: NinthBitCoder,
        })
    }

    /// [`IndexedStrings::save_bytes`] to a file, atomically (write a
    /// sibling `*.tmp`, fsync, rename): a crash mid-save never leaves a
    /// torn archive under the final name.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        wt_bits::write_atomic(&wt_bits::FsStorage, path.as_ref(), &self.save_bytes())
    }

    /// [`IndexedStrings::load_bytes`] from a file. Errors are tagged with
    /// the offending path ([`wt_bits::LoadError::InFile`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, wt_bits::LoadError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| wt_bits::LoadError::from(e).in_file(path))?;
        Self::load_bytes(&bytes).map_err(|e| e.in_file(path))
    }

    string_facade_queries!();
}

impl SpaceUsage for IndexedStrings {
    fn size_bits(&self) -> usize {
        self.inner.size_bits()
    }
}

/// Append-only compressed indexed log of byte strings (Theorem 4.3):
/// "compressing and indexing a sequential log on the fly".
#[derive(Clone, Debug, Default)]
pub struct AppendLog {
    inner: AppendWaveletTrie,
    coder: NinthBitCoder,
}

impl AppendLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// `Append(s)`: O(|s| + h_s).
    pub fn append(&mut self, s: impl AsRef<[u8]>) {
        self.inner
            .append(self.coder.encode(s.as_ref()).as_bitstr())
            .expect("NinthBitCoder output is prefix-free");
    }

    /// The underlying bit-level Wavelet Trie.
    pub fn inner(&self) -> &AppendWaveletTrie {
        &self.inner
    }

    string_facade_queries!();
}

impl SpaceUsage for AppendLog {
    fn size_bits(&self) -> usize {
        self.inner.size_bits()
    }
}

/// Fully dynamic compressed indexed sequence of byte strings (Theorem 4.4):
/// the database-column scenario with unknown, changing alphabet.
#[derive(Clone, Debug, Default)]
pub struct DynamicStrings {
    inner: DynamicWaveletTrie,
    coder: NinthBitCoder,
}

impl DynamicStrings {
    /// An empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// `Insert(s, pos)`: O(|s| + h_s log n).
    pub fn insert(&mut self, s: impl AsRef<[u8]>, pos: usize) {
        self.inner
            .insert(self.coder.encode(s.as_ref()).as_bitstr(), pos)
            .expect("NinthBitCoder output is prefix-free");
    }

    /// Appends at the end.
    pub fn push(&mut self, s: impl AsRef<[u8]>) {
        let n = self.len();
        self.insert(s, n);
    }

    /// `Delete(pos)`: removes and returns the string.
    pub fn remove(&mut self, pos: usize) -> Vec<u8> {
        let b = self.inner.delete(pos);
        decode_owned(&self.coder, &b)
    }

    /// The underlying bit-level Wavelet Trie.
    pub fn inner(&self) -> &DynamicWaveletTrie {
        &self.inner
    }

    string_facade_queries!();
}

impl SpaceUsage for DynamicStrings {
    fn size_bits(&self) -> usize {
        self.inner.size_bits()
    }
}

// --- bulk loading -----------------------------------------------------------
//
// `Extend` + `FromIterator` for every facade, so `collect()` and
// `extend(...)` replace hand-written append loops.

impl<S: AsRef<[u8]>> Extend<S> for AppendLog {
    fn extend<I: IntoIterator<Item = S>>(&mut self, iter: I) {
        for s in iter {
            self.append(s);
        }
    }
}

impl<S: AsRef<[u8]>> FromIterator<S> for AppendLog {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut log = AppendLog::new();
        log.extend(iter);
        log
    }
}

impl<S: AsRef<[u8]>> Extend<S> for DynamicStrings {
    fn extend<I: IntoIterator<Item = S>>(&mut self, iter: I) {
        for s in iter {
            self.push(s);
        }
    }
}

impl<S: AsRef<[u8]>> FromIterator<S> for DynamicStrings {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut col = DynamicStrings::new();
        col.extend(iter);
        col
    }
}

/// Appending to a static index melts it (structural [`WaveletTrie::thaw`]
/// into the append-only backend), appends, and re-freezes — O(existing
/// bits + new work), with no per-string re-insertion of the old content.
impl<S: AsRef<[u8]>> Extend<S> for IndexedStrings {
    fn extend<I: IntoIterator<Item = S>>(&mut self, iter: I) {
        let mut iter = iter.into_iter().peekable();
        if iter.peek().is_none() {
            return; // don't pay the melt/refreeze cycle for a no-op
        }
        let mut melted: AppendWaveletTrie = self.inner.thaw();
        for s in iter {
            melted
                .append(self.coder.encode(s.as_ref()).as_bitstr())
                .expect("NinthBitCoder output is prefix-free");
        }
        self.inner = melted.freeze();
    }
}

impl<S: AsRef<[u8]>> FromIterator<S> for IndexedStrings {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Self::build(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &[&str] = &[
        "http://a.com/x",
        "http://b.org/y",
        "http://a.com/x",
        "http://a.com/z",
        "http://c.net/",
        "http://a.com/x",
    ];

    #[test]
    fn static_facade() {
        let idx = IndexedStrings::build(LOG.iter().copied());
        assert_eq!(idx.len(), 6);
        assert_eq!(idx.distinct_len(), 4);
        assert_eq!(idx.get_string(0), "http://a.com/x");
        assert_eq!(idx.count("http://a.com/x"), 3);
        assert_eq!(idx.count_prefix("http://a.com/"), 4);
        assert_eq!(idx.rank_prefix("http://a.com/", 3), 2);
        assert_eq!(idx.select_prefix("http://a.com/", 2), Some(3));
        assert_eq!(idx.select("http://a.com/x", 2), Some(5));
        assert_eq!(idx.select("http://missing/", 0), None);
        // the string equal to a prefix counts as having that prefix
        assert_eq!(idx.count_prefix("http://c.net/"), 1);
        // 3 of 6 is exactly half — not a strict majority.
        assert_eq!(idx.range_majority(0, 6), None);
        // 2 of 3 in [0, 3) is.
        let maj = idx.range_majority(0, 3);
        assert_eq!(maj, Some(("http://a.com/x".into(), 2)));
        let top = idx.distinct_in_range_with_prefix("http://a.com/", 0, 6);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn append_facade_matches_static() {
        let mut log = AppendLog::new();
        for s in LOG {
            log.append(s);
        }
        let idx = IndexedStrings::build(LOG.iter().copied());
        assert_eq!(log.len(), idx.len());
        for i in 0..log.len() {
            assert_eq!(log.get_string(i), idx.get_string(i));
        }
        assert_eq!(
            log.count_prefix("http://a.com/"),
            idx.count_prefix("http://a.com/")
        );
        let a: Vec<String> = log.iter_range(1, 5).collect();
        let b: Vec<String> = idx.iter_range(1, 5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn dynamic_facade_full_lifecycle() {
        let mut col = DynamicStrings::new();
        for s in LOG {
            col.push(s);
        }
        col.insert("sqlite", 2);
        assert_eq!(col.get_string(2), "sqlite");
        assert_eq!(col.len(), 7);
        let removed = col.remove(2);
        assert_eq!(removed, b"sqlite");
        assert_eq!(col.count("sqlite"), 0);
        assert_eq!(col.len(), 6);
        // empty string round-trips too
        col.push("");
        assert_eq!(col.get_string(6), "");
        assert_eq!(col.count(""), 1);
        assert_eq!(col.remove(6), b"");
    }

    #[test]
    fn bulk_loading_impls() {
        // FromIterator for all three facades.
        let log: AppendLog = LOG.iter().copied().collect();
        let col: DynamicStrings = LOG.iter().copied().collect();
        let idx: IndexedStrings = LOG.iter().copied().collect();
        for f in [
            &log.count_prefix("http://a.com/"),
            &col.count_prefix("http://a.com/"),
            &idx.count_prefix("http://a.com/"),
        ] {
            assert_eq!(*f, 4);
        }
        // Extend: dynamic facades append; the static one melts (thaw),
        // appends, and re-freezes — equal to a from-scratch build.
        let (a, b) = LOG.split_at(3);
        let mut log2: AppendLog = a.iter().copied().collect();
        log2.extend(b.iter().copied());
        let mut col2: DynamicStrings = a.iter().copied().collect();
        col2.extend(b.iter().copied());
        let mut idx2: IndexedStrings = a.iter().copied().collect();
        idx2.extend(b.iter().copied());
        for (i, want) in LOG.iter().enumerate() {
            assert_eq!(&log2.get_string(i), want);
            assert_eq!(&col2.get_string(i), want);
            assert_eq!(&idx2.get_string(i), want);
        }
        assert_eq!(idx2.distinct_len(), idx.distinct_len());
        assert_eq!(idx2.count("http://a.com/x"), 3);
        // Extending an empty static index works too.
        let mut empty = IndexedStrings::build(Vec::<&str>::new());
        empty.extend(LOG.iter().copied());
        assert_eq!(empty.len(), 6);
    }

    #[test]
    fn unicode_strings_survive() {
        let strs = ["héllo", "wörld", "héllo", "日本語"];
        let idx = IndexedStrings::build(strs.iter().map(|s| s.as_bytes()));
        assert_eq!(idx.get_string(3), "日本語");
        assert_eq!(idx.count("héllo".as_bytes()), 2);
    }
}
