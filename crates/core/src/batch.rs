//! Software-pipelined batched queries for the static Wavelet Trie.
//!
//! A scalar static descent (§3, Lemmas 3.2/3.3) is a chain of *dependent*
//! cache misses and branchy directory probes: DFUDS word → label
//! delimiter → labels → internal flag → bitvector delimiters → RRR
//! superblock → classes → offsets, repeated per level. Independent queries
//! have no such dependence on each other, so the group descent here
//! advances all lanes level-by-level in lockstep, issuing the prefetches
//! for every lane's directory words before any lane resolves — N
//! sequential miss chains of depth `h` become ~`h` rounds of overlapped
//! misses (the same trick path-decomposed-trie and packed-trie engines use
//! to reach memory bandwidth instead of memory latency).
//!
//! On top of the pipelining, lanes are kept in **node-group order**: a
//! group is a run of lanes currently sitting in the same trie node, and a
//! group's children are emitted as two consecutive runs, so grouping is
//! preserved level to level with no sorting. All node metadata (preorder
//! id, label delimiters, internal index, bitvector segment bounds) is
//! resolved **once per group**, not once per lane — real traffic is
//! Zipf-skewed, so batches share the hot top of the trie and often whole
//! hot paths, and identical query strings collapse into a single descent.
//!
//! Every function here is **bit-identical** to its scalar counterpart in
//! [`crate::nav`]; `tests/batch_model.rs` pins that across backends.

use crate::static_wt::WaveletTrie;
use wt_bits::{BitRank, BitSelect};
use wt_trie::{BitStr, BitString};

/// Sentinel for "no parent" in the descent-link arena.
const NO_LINK: u32 = u32::MAX;

/// Below this many lanes the grouped pipeline's bookkeeping outweighs the
/// overlap it buys; such batches take the scalar loop instead.
const MIN_BATCH: usize = 8;

/// Per-level group scratch: parallel arrays indexed by group.
#[derive(Default)]
struct GroupMeta {
    pid: Vec<usize>,
    lab: Vec<(u64, u64)>,
    j: Vec<usize>,
    /// `(segment start, ones before)` per group.
    seg: Vec<(usize, usize)>,
    svals: Vec<u64>,
    ovals: Vec<u64>,
}

impl GroupMeta {
    /// Stages A: per-group node metadata with a prefetch round before
    /// every resolve round. `need_seg` additionally resolves the bitvector
    /// segment bounds/ones (two pipelined EF rounds).
    fn resolve(&mut self, wt: &WaveletTrie, nodes: &[usize], need_seg: bool) {
        let g = nodes.len();
        for &v in nodes {
            wt.tree.prefetch_node(v);
        }
        self.pid.clear();
        self.pid.extend(nodes.iter().map(|&v| wt.tree.preorder(v)));
        self.lab.clear();
        self.lab.resize(g, (0, 0));
        wt.label_bounds.get_pair_batch(&self.pid, &mut self.lab);
        for &(ls, _) in &self.lab {
            wt.labels.prefetch(ls as usize);
        }
        for &p in &self.pid {
            wt.internal.prefetch(p);
        }
        self.j.clear();
        self.j
            .extend(self.pid.iter().map(|&p| wt.internal.rank1(p)));
        for &j in &self.j {
            wt.tree.prefetch_child1(j);
        }
        if need_seg {
            self.resolve_seg(wt);
        }
    }

    /// Slim variant of [`GroupMeta::resolve`] for passes that only need
    /// each group's internal index `j` (no labels, no child prefetch):
    /// the leaf-to-root mapping of `select_batch`.
    fn resolve_rank_only(&mut self, wt: &WaveletTrie, nodes: &[usize]) {
        for &v in nodes {
            wt.tree.prefetch_node(v);
        }
        self.pid.clear();
        self.pid.extend(nodes.iter().map(|&v| wt.tree.preorder(v)));
        for &p in &self.pid {
            wt.internal.prefetch(p);
        }
        self.j.clear();
        self.j
            .extend(self.pid.iter().map(|&p| wt.internal.rank1(p)));
    }

    /// Batched `(segment start, ones before)` for the internal indexes in
    /// `self.j`.
    fn resolve_seg(&mut self, wt: &WaveletTrie) {
        let g = self.j.len();
        self.svals.clear();
        self.svals.resize(g, 0);
        wt.bv_bounds.get_batch(&self.j, &mut self.svals);
        self.ovals.clear();
        self.ovals.resize(g, 0);
        wt.bv_ones.get_batch(&self.j, &mut self.ovals);
        self.seg.clear();
        self.seg.extend(
            self.svals
                .iter()
                .zip(&self.ovals)
                .map(|(&s, &o)| (s as usize, o as usize)),
        );
    }

    /// The group's label as a borrowed view.
    fn label<'a>(&self, wt: &'a WaveletTrie, gi: usize) -> BitStr<'a> {
        let (ls, le) = self.lab[gi];
        BitStr::new(&wt.labels, ls as usize, (le - ls) as usize)
    }
}

/// Batched `Access` (Lemma 3.2) — see the module docs for the pipeline.
pub(crate) fn access_batch(wt: &WaveletTrie, positions: &[usize]) -> Vec<BitString> {
    if positions.len() < MIN_BATCH {
        return positions
            .iter()
            .map(|&p| crate::nav::access(wt, p))
            .collect();
    }
    for &p in positions {
        assert!(p < wt.n, "Access position out of bounds");
    }
    let m0 = positions.len();
    let mut out: Vec<BitString> = std::iter::repeat_with(BitString::new).take(m0).collect();
    if m0 == 0 {
        return out;
    }
    let root = wt.tree.root().expect("nonempty");
    // Lanes in group order (all start in the root group).
    let mut lane: Vec<u32> = (0..m0 as u32).collect();
    let mut pos: Vec<usize> = positions.to_vec();
    let mut groups: Vec<(usize, u32)> = vec![(root, m0 as u32)]; // (node, run len)
    let mut meta = GroupMeta::default();
    // Surviving-lane scratch (internal-node lanes of the current level).
    let mut s_lane: Vec<u32> = Vec::with_capacity(m0);
    let mut s_gi: Vec<u32> = Vec::with_capacity(m0);
    let mut gidx: Vec<usize> = Vec::with_capacity(m0);
    let mut gr: Vec<(bool, usize)> = Vec::with_capacity(m0);
    let mut groups2: Vec<(usize, u32)> = Vec::new();
    while !groups.is_empty() {
        // Stage A: metadata once per group.
        let nodes: Vec<usize> = groups.iter().map(|&(v, _)| v).collect();
        meta.resolve(wt, &nodes, true);
        // Stage B: per lane — emit the group label; leaves finish here.
        s_lane.clear();
        s_gi.clear();
        gidx.clear();
        let mut cur = 0usize;
        for (gi, &(v, len)) in groups.iter().enumerate() {
            let label = meta.label(wt, gi);
            let leaf = wt.tree.is_leaf(v);
            let (s, _) = meta.seg[gi];
            for k in cur..cur + len as usize {
                out[lane[k] as usize].push_str(label);
                if !leaf {
                    s_lane.push(lane[k]);
                    s_gi.push(gi as u32);
                    gidx.push(s + pos[k]);
                }
            }
            cur += len as usize;
        }
        if s_lane.is_empty() {
            break;
        }
        // Stage C: fused get+rank across all surviving lanes (its own
        // three-phase pipeline inside the RRR).
        gr.clear();
        gr.resize(s_lane.len(), (false, 0));
        wt.bvs.get_rank1_batch(&gidx, &mut gr);
        // Stage D: resolve branch bits; each group partitions into its
        // child runs (child 0 first), keeping lanes in group order.
        groups2.clear();
        lane.clear();
        pos.clear();
        let mut a = 0usize;
        while a < s_gi.len() {
            let gi = s_gi[a] as usize;
            let mut b = a + 1;
            while b < s_gi.len() && s_gi[b] as usize == gi {
                b += 1;
            }
            let (v, _) = groups[gi];
            let (s, ones) = meta.seg[gi];
            let j = meta.j[gi];
            for want in [false, true] {
                let start = lane.len();
                for k in a..b {
                    let (bit, r1) = gr[k];
                    if bit == want {
                        out[s_lane[k] as usize].push(bit);
                        lane.push(s_lane[k]);
                        pos.push(if bit {
                            r1 - ones
                        } else {
                            (gidx[k] - r1) - (s - ones)
                        });
                    }
                }
                if lane.len() > start {
                    let child = wt.child_fast(v, j, want);
                    wt.tree.prefetch_node(child);
                    groups2.push((child, (lane.len() - start) as u32));
                }
            }
            a = b;
        }
        std::mem::swap(&mut groups, &mut groups2);
    }
    out
}

/// Result of a grouped descent: per-lane outcome plus the shared
/// (ancestor, branch-bit) trails, encoded as a link arena so lanes that
/// followed the same branches share one path.
struct Descent {
    /// Per lane: `(node, link)` when the descent found a match.
    found: Vec<Option<(usize, u32)>>,
    /// Link arena: `(parent link, ancestor node, branch bit)`.
    links: Vec<(u32, usize, bool)>,
}

impl Descent {
    /// Materializes the root-to-node trail behind `link`.
    fn path_of(&self, mut link: u32, out: &mut Vec<(usize, bool)>) {
        out.clear();
        while link != NO_LINK {
            let (p, v, b) = self.links[link as usize];
            out.push((v, b));
            link = p;
        }
        out.reverse();
    }
}

/// Shared grouped descent: consumes each lane's query string level by
/// level. With `prefix` false this is the exact-membership descent (the
/// string must be consumed exactly at a leaf); with `prefix` true the
/// descent stops successfully as soon as the query is exhausted
/// (Lemma 3.3). Lanes with equal query strings follow identical branches
/// and therefore stay in the same group for the whole descent — the
/// degenerate "all lanes ask the same thing" batch costs one descent.
fn descend_batch(wt: &WaveletTrie, queries: &[BitStr<'_>], prefix: bool) -> Descent {
    let m0 = queries.len();
    let mut desc = Descent {
        found: (0..m0).map(|_| None).collect(),
        links: Vec::new(),
    };
    if m0 == 0 {
        return desc;
    }
    let Some(root) = wt.tree.root() else {
        return desc;
    };
    let mut lane: Vec<u32> = (0..m0 as u32).collect();
    // (node, run len, delta, link): delta is the consumed-bit count, a
    // function of the node; link identifies the shared trail so far.
    let mut groups: Vec<(usize, u32, usize, u32)> = vec![(root, m0 as u32, 0, NO_LINK)];
    let mut groups2: Vec<(usize, u32, usize, u32)> = Vec::new();
    let mut lane2: Vec<u32> = Vec::with_capacity(m0);
    let mut meta = GroupMeta::default();
    let mut branch: Vec<u8> = Vec::with_capacity(m0); // 0, 1, 2 = lane done
    while !groups.is_empty() {
        let nodes: Vec<usize> = groups.iter().map(|&(v, ..)| v).collect();
        meta.resolve(wt, &nodes, false);
        groups2.clear();
        lane2.clear();
        let mut cur = 0usize;
        for (gi, &(v, len, delta, link)) in groups.iter().enumerate() {
            let label = meta.label(wt, gi);
            let leaf = wt.tree.is_leaf(v);
            let run = cur..cur + len as usize;
            cur = run.end;
            // Per lane: lcp against the group label decides the outcome.
            branch.clear();
            for k in run.clone() {
                let l_id = lane[k] as usize;
                let s = queries[l_id];
                let rest = s.suffix(delta);
                let lcp = label.lcp(&rest);
                if prefix && delta + lcp == s.len() {
                    // Prefix exhausted (possibly mid-label): subtree match.
                    desc.found[l_id] = Some((v, link));
                    branch.push(2);
                    continue;
                }
                if lcp < label.len() {
                    branch.push(2); // mismatch inside the label: absent
                    continue;
                }
                let d = delta + lcp;
                if leaf {
                    if !prefix && d == s.len() {
                        desc.found[l_id] = Some((v, link));
                    }
                    branch.push(2);
                    continue;
                }
                if d == s.len() {
                    branch.push(2); // proper prefix of everything below
                    continue;
                }
                branch.push(s.get(d) as u8);
            }
            if leaf {
                continue;
            }
            let child_delta = delta + label.len() + 1;
            for want in [0u8, 1u8] {
                let start = lane2.len();
                for (k, &b) in run.clone().zip(&branch) {
                    if b == want {
                        lane2.push(lane[k]);
                    }
                }
                if lane2.len() > start {
                    let bit = want == 1;
                    let child = wt.child_fast(v, meta.j[gi], bit);
                    wt.tree.prefetch_node(child);
                    desc.links.push((link, v, bit));
                    groups2.push((
                        child,
                        (lane2.len() - start) as u32,
                        child_delta,
                        (desc.links.len() - 1) as u32,
                    ));
                }
            }
        }
        std::mem::swap(&mut groups, &mut groups2);
        std::mem::swap(&mut lane, &mut lane2);
    }
    desc
}

/// The distinct `(node, link)` outcomes of a descent, with the lanes that
/// reached each — the unit the downstream passes (map-down, subtree
/// count, map-up) operate on, so identical queries pay once.
struct FoundGroups {
    /// `(node, link)` per distinct outcome.
    key: Vec<(usize, u32)>,
    /// Materialized path per outcome.
    paths: Vec<Vec<(usize, bool)>>,
    /// Lanes per outcome.
    lanes: Vec<Vec<u32>>,
}

fn found_groups(desc: &Descent) -> FoundGroups {
    let mut fg = FoundGroups {
        key: Vec::new(),
        paths: Vec::new(),
        lanes: Vec::new(),
    };
    // Outcomes are keyed by link (distinct trails) + node; linear probe
    // over a small map keyed by link id.
    let mut by_link: std::collections::HashMap<(usize, u32), usize> =
        std::collections::HashMap::new();
    for (l, f) in desc.found.iter().enumerate() {
        let Some((node, link)) = *f else { continue };
        let idx = *by_link.entry((node, link)).or_insert_with(|| {
            fg.key.push((node, link));
            let mut p = Vec::new();
            desc.path_of(link, &mut p);
            fg.paths.push(p);
            fg.lanes.push(Vec::new());
            fg.key.len() - 1
        });
        fg.lanes[idx].push(l as u32);
    }
    fg
}

/// Batched `Rank(s, pos)` — a *fused* grouped walk: the scalar algorithm
/// descends first and then maps the position down the recorded path, two
/// passes over the same levels; here every lane's position is mapped in
/// the same round that consumes its query bits, so a batch pays one round
/// of (grouped metadata + batched bitvector ranks) per level instead of
/// two. Lanes that turn out absent report 0 (their partial mapping is
/// discarded), exactly like the scalar early-exit.
pub(crate) fn rank_batch(wt: &WaveletTrie, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
    if queries.len() < MIN_BATCH {
        return queries
            .iter()
            .map(|&(s, pos)| crate::nav::rank(wt, s, pos))
            .collect();
    }
    for &(_, pos) in queries {
        assert!(pos <= wt.n, "Rank position out of bounds");
    }
    let m0 = queries.len();
    let mut res = vec![0usize; m0];
    let Some(root) = wt.tree.root() else {
        return res;
    };
    let mut lane: Vec<u32> = (0..m0 as u32).collect();
    let mut p: Vec<usize> = queries.iter().map(|&(_, pos)| pos).collect();
    // (node, run len, delta) in group order, as in `descend_batch`.
    let mut groups: Vec<(usize, u32, usize)> = vec![(root, m0 as u32, 0)];
    let mut groups2: Vec<(usize, u32, usize)> = Vec::new();
    let mut lane2: Vec<u32> = Vec::with_capacity(m0);
    let mut p2: Vec<usize> = Vec::with_capacity(m0);
    let mut meta = GroupMeta::default();
    let mut branch: Vec<u8> = Vec::with_capacity(m0); // 0, 1, 2 = lane done
    let mut gidx: Vec<usize> = Vec::with_capacity(m0);
    let mut r1s: Vec<usize> = Vec::with_capacity(m0);
    let mut nodes: Vec<usize> = Vec::new();
    while !groups.is_empty() {
        nodes.clear();
        nodes.extend(groups.iter().map(|&(v, ..)| v));
        meta.resolve(wt, &nodes, true);
        // Pass 1: consume this level's label per lane; survivors register
        // their bitvector target for the batched rank round.
        branch.clear();
        gidx.clear();
        let mut cur = 0usize;
        for (gi, &(v, len, delta)) in groups.iter().enumerate() {
            let label = meta.label(wt, gi);
            let leaf = wt.tree.is_leaf(v);
            let (s, _) = meta.seg[gi];
            for k in cur..cur + len as usize {
                let l_id = lane[k] as usize;
                let q = queries[l_id].0;
                let rest = q.suffix(delta);
                let lcp = label.lcp(&rest);
                if lcp < label.len() {
                    branch.push(2); // mismatch inside the label: absent (0)
                    continue;
                }
                let d = delta + lcp;
                if leaf {
                    if d == q.len() {
                        res[l_id] = p[k]; // found: fully mapped position
                    }
                    branch.push(2);
                    continue;
                }
                if d == q.len() {
                    branch.push(2); // proper prefix of everything below
                    continue;
                }
                branch.push(q.get(d) as u8);
                gidx.push(s + p[k]);
            }
            cur += len as usize;
        }
        if gidx.is_empty() {
            break;
        }
        // Batched rank over every surviving lane's target.
        r1s.clear();
        r1s.resize(gidx.len(), 0);
        wt.bvs.rank1_batch(&gidx, &mut r1s);
        // Pass 2: map positions down and split each group into child runs.
        groups2.clear();
        lane2.clear();
        p2.clear();
        let mut cur = 0usize;
        let mut at = 0usize; // cursor into gidx/r1s (survivors only)
        for (gi, &(v, len, delta)) in groups.iter().enumerate() {
            let run = cur..cur + len as usize;
            cur = run.end;
            if wt.tree.is_leaf(v) {
                continue; // no survivors registered targets here
            }
            let (s, ones) = meta.seg[gi];
            let child_delta = delta + (meta.lab[gi].1 - meta.lab[gi].0) as usize + 1;
            let run_at = at;
            for want in [0u8, 1u8] {
                let start = lane2.len();
                let mut a = run_at;
                for k in run.clone() {
                    let b = branch[k];
                    if b == 2 {
                        continue;
                    }
                    let (gx, r1) = (gidx[a], r1s[a]);
                    a += 1;
                    if b == want {
                        lane2.push(lane[k]);
                        p2.push(if b == 1 {
                            r1 - ones
                        } else {
                            (gx - r1) - (s - ones)
                        });
                    }
                }
                at = a;
                if lane2.len() > start {
                    let child = wt.child_fast(v, meta.j[gi], want == 1);
                    wt.tree.prefetch_node(child);
                    groups2.push((child, (lane2.len() - start) as u32, child_delta));
                }
            }
        }
        std::mem::swap(&mut groups, &mut groups2);
        std::mem::swap(&mut lane, &mut lane2);
        std::mem::swap(&mut p, &mut p2);
    }
    res
}

/// Number of sequence positions in each found group's subtree — the
/// batched [`crate::nav`] `subtree_count`, resolved from the delimiter
/// directories alone (no bitvector probes), once per distinct outcome.
fn subtree_counts(wt: &WaveletTrie, fg: &FoundGroups) -> Vec<usize> {
    fg.key
        .iter()
        .zip(&fg.paths)
        .map(|(&(node, _), path)| {
            if !wt.tree.is_leaf(node) {
                let j = wt.internal.rank1(wt.tree.preorder(node));
                let (s, e) = wt.bv_bounds.get_pair(j);
                (e - s) as usize
            } else {
                match path.last() {
                    Some(&(parent, b)) => {
                        // Count of `b` in the parent's bitvector, straight
                        // from the per-node ones directory.
                        let j = wt.internal.rank1(wt.tree.preorder(parent));
                        let (s, e) = wt.bv_bounds.get_pair(j);
                        let (o0, o1) = wt.bv_ones.get_pair(j);
                        let ones = (o1 - o0) as usize;
                        if b {
                            ones
                        } else {
                            (e - s) as usize - ones
                        }
                    }
                    None => wt.n, // root leaf: the whole sequence
                }
            }
        })
        .collect()
}

/// Batched `Select(s, idx)` — grouped descent, then lockstep upward
/// mapping (one select round per level, leaf-to-root).
pub(crate) fn select_batch(
    wt: &WaveletTrie,
    queries: &[(BitStr<'_>, usize)],
) -> Vec<Option<usize>> {
    if queries.len() < MIN_BATCH {
        return queries
            .iter()
            .map(|&(s, idx)| crate::nav::select(wt, s, idx))
            .collect();
    }
    let strings: Vec<BitStr<'_>> = queries.iter().map(|&(s, _)| s).collect();
    let desc = descend_batch(wt, &strings, false);
    let fg = found_groups(&desc);
    let counts = subtree_counts(wt, &fg);
    let mut res: Vec<Option<usize>> = vec![None; queries.len()];
    // Per-lane occurrence index, bound-checked against the group count.
    let mut iv: Vec<usize> = vec![0; queries.len()];
    let mut in_range: Vec<Vec<u32>> = Vec::with_capacity(fg.key.len());
    for (g, lanes) in fg.lanes.iter().enumerate() {
        let mut keep = Vec::new();
        for &l in lanes {
            let idx = queries[l as usize].1;
            if idx < counts[g] {
                iv[l as usize] = idx;
                keep.push(l);
            }
        }
        in_range.push(keep);
    }
    let mut act: Vec<u32> = (0..fg.key.len() as u32)
        .filter(|&g| !in_range[g as usize].is_empty())
        .collect();
    let mut meta = GroupMeta::default();
    let mut nodes: Vec<usize> = Vec::new();
    let mut ends: Vec<(u64, u64)> = Vec::new();
    let mut round = 0usize;
    while !act.is_empty() {
        act.retain(|&g| {
            let g = g as usize;
            if fg.paths[g].len() <= round {
                for &l in &in_range[g] {
                    res[l as usize] = Some(iv[l as usize]);
                }
                false
            } else {
                true
            }
        });
        if act.is_empty() {
            break;
        }
        // Entry `depth - 1 - round` of each group: leaf-to-root order.
        nodes.clear();
        nodes.extend(act.iter().map(|&g| {
            let path = &fg.paths[g as usize];
            path[path.len() - 1 - round].0
        }));
        // One bounds round (the pair gives both segment ends) plus one
        // ones round; the full `resolve` would also fetch label bounds
        // this pass never reads.
        meta.resolve_rank_only(wt, &nodes);
        ends.clear();
        ends.resize(nodes.len(), (0, 0));
        wt.bv_bounds.get_pair_batch(&meta.j, &mut ends);
        meta.ovals.clear();
        meta.ovals.resize(nodes.len(), 0);
        wt.bv_ones.get_batch(&meta.j, &mut meta.ovals);
        for (k, &g) in act.iter().enumerate() {
            let g = g as usize;
            let path = &fg.paths[g];
            let bit = path[path.len() - 1 - round].1;
            let (s, ones) = (ends[k].0 as usize, meta.ovals[k] as usize);
            let e = ends[k].1 as usize;
            let before = if bit { ones } else { s - ones };
            for &l in &in_range[g] {
                let l = l as usize;
                match wt.bvs.select(bit, before + iv[l]) {
                    Some(pp) if pp < e => iv[l] = pp - s,
                    _ => {
                        // Out of this node's segment: no such occurrence.
                        // Mark dead by removing from the group below.
                        iv[l] = usize::MAX;
                    }
                }
            }
        }
        // Drop dead lanes; drop groups with no lanes left.
        for &g in &act {
            in_range[g as usize].retain(|&l| iv[l as usize] != usize::MAX);
        }
        act.retain(|&g| !in_range[g as usize].is_empty());
        round += 1;
    }
    res
}

/// Batched `CountPrefix(p)` (Lemma 3.3): grouped prefix descent, then the
/// subtree sizes straight from the delimiter directories — identical
/// prefixes pay a single descent and a single count.
pub(crate) fn count_prefix_batch(wt: &WaveletTrie, prefixes: &[BitStr<'_>]) -> Vec<usize> {
    if prefixes.len() < MIN_BATCH {
        return prefixes
            .iter()
            .map(|&p| crate::nav::count_prefix(wt, p))
            .collect();
    }
    let desc = descend_batch(wt, prefixes, true);
    let fg = found_groups(&desc);
    let counts = subtree_counts(wt, &fg);
    let mut res = vec![0usize; prefixes.len()];
    for (g, lanes) in fg.lanes.iter().enumerate() {
        for &l in lanes {
            res[l as usize] = counts[g];
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use crate::ops::SeqIndex;
    use crate::static_wt::WaveletTrie;
    use wt_trie::BitString;

    /// Pipeline-level smoke check (the cross-backend equivalence suite
    /// lives in `tests/batch_model.rs`): every batched op must agree with
    /// its scalar counterpart on a sequence wide and deep enough to
    /// exercise group splits and multi-chunk batches.
    #[test]
    fn group_descent_matches_scalar() {
        let mut s = 0x5EED_CAFEu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Variable-depth strings: 12-bit prefix-free codes plus a few very
        // deep "skewed" strings sharing long prefixes.
        let encode = |v: u64| BitString::from_bits((0..12).rev().map(move |k| (v >> k) & 1 != 0));
        let mut seq: Vec<BitString> = (0..4000).map(|_| encode(next() % 150)).collect();
        for d in 0..40 {
            let mut deep = BitString::parse("111111111111");
            for i in 0..d {
                deep.push(i % 3 == 0);
            }
            deep.push(true);
            seq.push(deep);
        }
        let seq: Vec<BitString> = {
            // Drop prefix-violating deep strings by admitting one by one.
            let mut probe = crate::dyn_wt::DynamicWaveletTrie::new();
            seq.into_iter()
                .filter(|s| probe.append(s.as_bitstr()).is_ok())
                .collect()
        };
        let wt = WaveletTrie::build(&seq).unwrap();
        let n = wt.len();
        // Access over a 300-lane batch (crosses the 64-lane RRR chunks).
        let positions: Vec<usize> = (0..300).map(|_| (next() % n as u64) as usize).collect();
        let batched = wt.access_batch(&positions);
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(batched[k], wt.access(p), "access lane {k}");
        }
        // Rank / select / count_prefix over mixed present + absent queries
        // (with heavy duplication, so the grouped paths are exercised).
        let probes: Vec<BitString> = (0..200)
            .map(|k| {
                if k % 3 == 0 {
                    encode(next() % 200) // sometimes absent
                } else {
                    seq[(next() % seq.len() as u64) as usize].clone()
                }
            })
            .collect();
        let rank_q: Vec<_> = probes
            .iter()
            .map(|s| (s.as_bitstr(), (next() % (n as u64 + 1)) as usize))
            .collect();
        let got = wt.rank_batch(&rank_q);
        for (k, &(s, pos)) in rank_q.iter().enumerate() {
            assert_eq!(got[k], wt.rank(s, pos), "rank lane {k}");
        }
        let sel_q: Vec<_> = probes
            .iter()
            .map(|s| (s.as_bitstr(), (next() % 40) as usize))
            .collect();
        let got = wt.select_batch(&sel_q);
        for (k, &(s, idx)) in sel_q.iter().enumerate() {
            assert_eq!(got[k], wt.select(s, idx), "select lane {k}");
        }
        let prefixes: Vec<_> = probes
            .iter()
            .map(|s| s.as_bitstr().prefix((next() % 14) as usize % (s.len() + 1)))
            .collect();
        let got = wt.count_prefix_batch(&prefixes);
        for (k, &p) in prefixes.iter().enumerate() {
            assert_eq!(got[k], wt.count_prefix(p), "count_prefix lane {k}");
        }
    }
}
