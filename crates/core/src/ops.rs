//! The public query interface shared by all Wavelet Trie variants.
//!
//! [`SequenceOps`] is blanket-implemented for every type that knows how to
//! navigate its trie ([`TrieNav`]), so the static, append-only and fully
//! dynamic structures expose the paper's operations (§1 primitive list,
//! Lemmas 3.2/3.3) and the §5 range algorithms through one interface.

use crate::nav::{self, TrieNav};
use crate::range::{self, RangeIter};
use wt_trie::{BitStr, BitString};

/// Queries over an indexed sequence of binary strings.
///
/// Positions are 0-based; `rank`-style bounds are exclusive (`[0, pos)`);
/// `select`-style indices are 0-based occurrence numbers.
pub trait SequenceOps: TrieNav + Sized {
    /// Number of strings in the sequence.
    fn seq_len(&self) -> usize {
        self.nav_len()
    }

    /// Whether the sequence is empty.
    fn seq_is_empty(&self) -> bool {
        self.nav_len() == 0
    }

    /// `Access(pos)`: the string at position `pos`.
    ///
    /// # Panics
    /// If `pos >= seq_len()`.
    fn access(&self, pos: usize) -> BitString {
        nav::access(self, pos)
    }

    /// `Rank(s, pos)`: occurrences of `s` in positions `[0, pos)`.
    fn rank(&self, s: BitStr<'_>, pos: usize) -> usize {
        nav::rank(self, s, pos)
    }

    /// `Select(s, idx)`: position of the `idx`-th (0-based) occurrence of `s`.
    fn select(&self, s: BitStr<'_>, idx: usize) -> Option<usize> {
        nav::select(self, s, idx)
    }

    /// `RankPrefix(p, pos)`: strings with prefix `p` in positions `[0, pos)`.
    fn rank_prefix(&self, p: BitStr<'_>, pos: usize) -> usize {
        nav::rank_prefix(self, p, pos)
    }

    /// `SelectPrefix(p, idx)`: position of the `idx`-th string with prefix `p`.
    fn select_prefix(&self, p: BitStr<'_>, idx: usize) -> Option<usize> {
        nav::select_prefix(self, p, idx)
    }

    /// Total occurrences of `s`.
    fn count(&self, s: BitStr<'_>) -> usize {
        nav::count(self, s)
    }

    /// Total strings with prefix `p`.
    fn count_prefix(&self, p: BitStr<'_>) -> usize {
        nav::count_prefix(self, p)
    }

    /// Occurrences of `s` in `[l, r)` (range counting, §1).
    fn range_count(&self, s: BitStr<'_>, l: usize, r: usize) -> usize {
        assert!(l <= r, "range out of bounds");
        self.rank(s, r) - self.rank(s, l)
    }

    /// Strings with prefix `p` in `[l, r)`.
    fn range_count_prefix(&self, p: BitStr<'_>, l: usize, r: usize) -> usize {
        assert!(l <= r, "range out of bounds");
        self.rank_prefix(p, r) - self.rank_prefix(p, l)
    }

    /// Number of distinct strings (|Sset|).
    fn distinct_len(&self) -> usize {
        nav::distinct_count(self)
    }

    /// Trie height: max internal nodes on a root-to-leaf path.
    fn height(&self) -> usize {
        nav::height(self)
    }

    /// Average height `h̃` (Definition 3.4): total bitvector bits / n.
    fn avg_height(&self) -> f64 {
        if self.nav_len() == 0 {
            0.0
        } else {
            nav::total_bitvector_bits(self) as f64 / self.nav_len() as f64
        }
    }

    /// Sum of all node bitvector lengths (= `h̃·n`, §3).
    fn total_bitvector_bits(&self) -> usize {
        nav::total_bitvector_bits(self)
    }

    /// Distinct strings of `S[l, r)` with counts, lexicographically (§5).
    fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::distinct_in_range(self, l, r, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    /// Distinct strings with prefix `p` in `S[l, r)` with counts (§5).
    fn distinct_in_range_with_prefix(
        &self,
        p: BitStr<'_>,
        l: usize,
        r: usize,
    ) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::distinct_in_range_with_prefix(self, p, l, r, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    /// Distinct `depth`-bit prefixes of `S[l, r)` with counts (§5
    /// stop-early enumeration; e.g. distinct hostnames in a time window).
    /// Strings shorter than `depth` are reported whole.
    fn distinct_prefixes_in_range(
        &self,
        l: usize,
        r: usize,
        depth: usize,
    ) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::distinct_prefixes_in_range(self, l, r, depth, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    /// Majority element of `S[l, r)` (> (r−l)/2 occurrences), if any (§5).
    fn range_majority(&self, l: usize, r: usize) -> Option<(BitString, usize)> {
        range::range_majority(self, l, r)
    }

    /// All strings occurring ≥ `min_count` times in `S[l, r)` (§5 heuristic).
    fn range_frequent(&self, l: usize, r: usize, min_count: usize) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::range_frequent(self, l, r, min_count, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    /// Sequential iterator over `S[l, r)` (§5 "Sequential access").
    fn iter_range(&self, l: usize, r: usize) -> RangeIter<'_, Self> {
        RangeIter::new(self, l, r)
    }

    /// Iterator over the whole sequence.
    fn iter_seq(&self) -> RangeIter<'_, Self> {
        self.iter_range(0, self.nav_len())
    }

    /// Iterator over the `idx0`-th to `idx1`-th (exclusive) strings having
    /// prefix `p`, in sequence order.
    fn iter_prefix_matches(&self, p: BitStr<'_>, idx0: usize, idx1: usize) -> RangeIter<'_, Self> {
        RangeIter::new_with_prefix(self, p, idx0, idx1)
    }
}

impl<T: TrieNav> SequenceOps for T {}
