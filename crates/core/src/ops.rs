//! The public query interface shared by all Wavelet Trie variants.
//!
//! Two layers:
//!
//! * [`SeqIndex`] — the **object-safe** query surface (the paper's §1
//!   primitive list, Lemmas 3.2/3.3, and the §5 range algorithms). It is
//!   blanket-implemented for every type that knows how to navigate its trie
//!   ([`TrieNav`]) — the static, append-only and fully dynamic structures —
//!   and implemented directly by composite indexes such as the tiered
//!   store, so heterogeneous segments can sit behind `&dyn SeqIndex` /
//!   `Box<dyn SeqIndex>`.
//! * [`SequenceOps`] — a thin `Sized` extension adding the borrowing
//!   sequential iterators ([`RangeIter`] holds the concrete navigator
//!   type, so these methods cannot be object-safe).

use crate::nav::{self, TrieNav};
use crate::range::{self, RangeIter};
use wt_trie::{BitStr, BitString};

/// Object-safe queries over an indexed sequence of binary strings.
///
/// Positions are 0-based; `rank`-style bounds are exclusive (`[0, pos)`);
/// `select`-style indices are 0-based occurrence numbers.
///
/// Every method is dispatchable through `&dyn SeqIndex`, which is how the
/// tiered store treats its mixed static/dynamic segments.
pub trait SeqIndex {
    /// Number of strings in the sequence.
    fn seq_len(&self) -> usize;

    /// Whether the sequence is empty.
    fn seq_is_empty(&self) -> bool {
        self.seq_len() == 0
    }

    /// `Access(pos)`: the string at position `pos`.
    ///
    /// # Panics
    /// If `pos >= seq_len()`.
    fn access(&self, pos: usize) -> BitString;

    /// `Rank(s, pos)`: occurrences of `s` in positions `[0, pos)`.
    fn rank(&self, s: BitStr<'_>, pos: usize) -> usize;

    /// `Select(s, idx)`: position of the `idx`-th (0-based) occurrence of `s`.
    fn select(&self, s: BitStr<'_>, idx: usize) -> Option<usize>;

    /// `RankPrefix(p, pos)`: strings with prefix `p` in positions `[0, pos)`.
    fn rank_prefix(&self, p: BitStr<'_>, pos: usize) -> usize;

    /// `SelectPrefix(p, idx)`: position of the `idx`-th string with prefix `p`.
    fn select_prefix(&self, p: BitStr<'_>, idx: usize) -> Option<usize>;

    /// Total occurrences of `s`.
    fn count(&self, s: BitStr<'_>) -> usize {
        self.rank(s, self.seq_len())
    }

    /// Total strings with prefix `p`.
    fn count_prefix(&self, p: BitStr<'_>) -> usize {
        self.rank_prefix(p, self.seq_len())
    }

    /// Occurrences of `s` in `[l, r)` (range counting, §1).
    fn range_count(&self, s: BitStr<'_>, l: usize, r: usize) -> usize {
        assert!(l <= r, "range out of bounds");
        self.rank(s, r) - self.rank(s, l)
    }

    /// Strings with prefix `p` in `[l, r)`.
    fn range_count_prefix(&self, p: BitStr<'_>, l: usize, r: usize) -> usize {
        assert!(l <= r, "range out of bounds");
        self.rank_prefix(p, r) - self.rank_prefix(p, l)
    }

    /// Whether `s` could join the sequence without breaking the prefix-free
    /// invariant of §3: `s` must be neither a proper prefix of a stored
    /// string nor a proper extension of one (an exact duplicate is fine).
    fn admits(&self, s: BitStr<'_>) -> bool;

    /// Number of distinct strings (|Sset|).
    fn distinct_len(&self) -> usize;

    /// Trie height: max internal nodes on a root-to-leaf path.
    fn height(&self) -> usize;

    /// Average height `h̃` (Definition 3.4): total bitvector bits / n.
    fn avg_height(&self) -> f64 {
        if self.seq_len() == 0 {
            0.0
        } else {
            self.total_bitvector_bits() as f64 / self.seq_len() as f64
        }
    }

    /// Sum of all node bitvector lengths (= `h̃·n`, §3).
    fn total_bitvector_bits(&self) -> usize;

    /// Distinct strings of `S[l, r)` with counts, lexicographically (§5).
    fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(BitString, usize)>;

    /// Distinct strings with prefix `p` in `S[l, r)` with counts (§5).
    fn distinct_in_range_with_prefix(
        &self,
        p: BitStr<'_>,
        l: usize,
        r: usize,
    ) -> Vec<(BitString, usize)>;

    /// Distinct `depth`-bit prefixes of `S[l, r)` with counts (§5
    /// stop-early enumeration; e.g. distinct hostnames in a time window).
    /// Strings shorter than `depth` are reported whole.
    fn distinct_prefixes_in_range(
        &self,
        l: usize,
        r: usize,
        depth: usize,
    ) -> Vec<(BitString, usize)>;

    /// Majority element of `S[l, r)` (> (r−l)/2 occurrences), if any (§5).
    fn range_majority(&self, l: usize, r: usize) -> Option<(BitString, usize)>;

    /// All strings occurring ≥ `min_count` times in `S[l, r)` (§5 heuristic).
    fn range_frequent(&self, l: usize, r: usize, min_count: usize) -> Vec<(BitString, usize)>;

    // --- batched queries ---------------------------------------------------
    //
    // Throughput entry points: resolve many *independent* queries per call
    // so a backend can overlap their memory latencies (each scalar static
    // descent is a chain of dependent cache misses; N interleaved descents
    // turn into ~depth rounds of overlapped misses). The defaults loop the
    // scalar operations — every implementation answers bit-identically to
    // the scalar API. The static trie and the tiered store override these.

    /// Batched [`SeqIndex::access`]: the strings at `positions`, in order.
    ///
    /// # Panics
    /// If any position is `>= seq_len()`.
    fn access_batch(&self, positions: &[usize]) -> Vec<BitString> {
        positions.iter().map(|&p| self.access(p)).collect()
    }

    /// Batched [`SeqIndex::rank`] over `(string, position)` queries.
    fn rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
        queries.iter().map(|&(s, pos)| self.rank(s, pos)).collect()
    }

    /// Batched [`SeqIndex::select`] over `(string, occurrence idx)` queries.
    fn select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>> {
        queries
            .iter()
            .map(|&(s, idx)| self.select(s, idx))
            .collect()
    }

    /// Batched [`SeqIndex::count_prefix`].
    fn count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize> {
        prefixes.iter().map(|&p| self.count_prefix(p)).collect()
    }

    /// Sequential iterator over `S[l, r)` (§5 "Sequential access"), boxed so
    /// it stays object-safe. `Sized` callers get the allocation-free
    /// [`SequenceOps::iter_range`] instead.
    fn iter_range_boxed(&self, l: usize, r: usize) -> Box<dyn Iterator<Item = BitString> + '_>;

    /// Boxed iterator over the whole sequence.
    fn iter_seq_boxed(&self) -> Box<dyn Iterator<Item = BitString> + '_> {
        self.iter_range_boxed(0, self.seq_len())
    }
}

impl<T: TrieNav> SeqIndex for T {
    fn seq_len(&self) -> usize {
        self.nav_len()
    }

    fn access(&self, pos: usize) -> BitString {
        self.nav_access(pos)
    }

    fn rank(&self, s: BitStr<'_>, pos: usize) -> usize {
        self.nav_rank(s, pos)
    }

    fn select(&self, s: BitStr<'_>, idx: usize) -> Option<usize> {
        self.nav_select(s, idx)
    }

    fn rank_prefix(&self, p: BitStr<'_>, pos: usize) -> usize {
        nav::rank_prefix(self, p, pos)
    }

    fn select_prefix(&self, p: BitStr<'_>, idx: usize) -> Option<usize> {
        nav::select_prefix(self, p, idx)
    }

    fn count(&self, s: BitStr<'_>) -> usize {
        self.nav_count(s)
    }

    fn count_prefix(&self, p: BitStr<'_>) -> usize {
        self.nav_count_prefix(p)
    }

    fn admits(&self, s: BitStr<'_>) -> bool {
        nav::admits(self, s)
    }

    fn distinct_len(&self) -> usize {
        nav::distinct_count(self)
    }

    fn height(&self) -> usize {
        nav::height(self)
    }

    fn total_bitvector_bits(&self) -> usize {
        nav::total_bitvector_bits(self)
    }

    fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::distinct_in_range(self, l, r, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    fn distinct_in_range_with_prefix(
        &self,
        p: BitStr<'_>,
        l: usize,
        r: usize,
    ) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::distinct_in_range_with_prefix(self, p, l, r, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    fn distinct_prefixes_in_range(
        &self,
        l: usize,
        r: usize,
        depth: usize,
    ) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::distinct_prefixes_in_range(self, l, r, depth, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    fn range_majority(&self, l: usize, r: usize) -> Option<(BitString, usize)> {
        range::range_majority(self, l, r)
    }

    fn range_frequent(&self, l: usize, r: usize, min_count: usize) -> Vec<(BitString, usize)> {
        let mut out = Vec::new();
        range::range_frequent(self, l, r, min_count, &mut |s, c| out.push((s.clone(), c)));
        out
    }

    fn access_batch(&self, positions: &[usize]) -> Vec<BitString> {
        self.nav_access_batch(positions)
    }

    fn rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
        self.nav_rank_batch(queries)
    }

    fn select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>> {
        self.nav_select_batch(queries)
    }

    fn count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize> {
        self.nav_count_prefix_batch(prefixes)
    }

    fn iter_range_boxed(&self, l: usize, r: usize) -> Box<dyn Iterator<Item = BitString> + '_> {
        Box::new(RangeIter::new(self, l, r))
    }
}

/// Implements [`SeqIndex`] for an owning smart pointer to a `SeqIndex`
/// trait object by delegating **every** method — including the ones with
/// defaults — so the pointee's overrides (e.g. the static trie's
/// software-pipelined `*_batch` kernels) are never bypassed by a
/// default-method shortcut.
macro_rules! impl_seq_index_for_pointer {
    ($ty:ty) => {
        impl SeqIndex for $ty {
            fn seq_len(&self) -> usize {
                (**self).seq_len()
            }
            fn seq_is_empty(&self) -> bool {
                (**self).seq_is_empty()
            }
            fn access(&self, pos: usize) -> BitString {
                (**self).access(pos)
            }
            fn rank(&self, s: BitStr<'_>, pos: usize) -> usize {
                (**self).rank(s, pos)
            }
            fn select(&self, s: BitStr<'_>, idx: usize) -> Option<usize> {
                (**self).select(s, idx)
            }
            fn rank_prefix(&self, p: BitStr<'_>, pos: usize) -> usize {
                (**self).rank_prefix(p, pos)
            }
            fn select_prefix(&self, p: BitStr<'_>, idx: usize) -> Option<usize> {
                (**self).select_prefix(p, idx)
            }
            fn count(&self, s: BitStr<'_>) -> usize {
                (**self).count(s)
            }
            fn count_prefix(&self, p: BitStr<'_>) -> usize {
                (**self).count_prefix(p)
            }
            fn range_count(&self, s: BitStr<'_>, l: usize, r: usize) -> usize {
                (**self).range_count(s, l, r)
            }
            fn range_count_prefix(&self, p: BitStr<'_>, l: usize, r: usize) -> usize {
                (**self).range_count_prefix(p, l, r)
            }
            fn admits(&self, s: BitStr<'_>) -> bool {
                (**self).admits(s)
            }
            fn distinct_len(&self) -> usize {
                (**self).distinct_len()
            }
            fn height(&self) -> usize {
                (**self).height()
            }
            fn avg_height(&self) -> f64 {
                (**self).avg_height()
            }
            fn total_bitvector_bits(&self) -> usize {
                (**self).total_bitvector_bits()
            }
            fn distinct_in_range(&self, l: usize, r: usize) -> Vec<(BitString, usize)> {
                (**self).distinct_in_range(l, r)
            }
            fn distinct_in_range_with_prefix(
                &self,
                p: BitStr<'_>,
                l: usize,
                r: usize,
            ) -> Vec<(BitString, usize)> {
                (**self).distinct_in_range_with_prefix(p, l, r)
            }
            fn distinct_prefixes_in_range(
                &self,
                l: usize,
                r: usize,
                depth: usize,
            ) -> Vec<(BitString, usize)> {
                (**self).distinct_prefixes_in_range(l, r, depth)
            }
            fn range_majority(&self, l: usize, r: usize) -> Option<(BitString, usize)> {
                (**self).range_majority(l, r)
            }
            fn range_frequent(
                &self,
                l: usize,
                r: usize,
                min_count: usize,
            ) -> Vec<(BitString, usize)> {
                (**self).range_frequent(l, r, min_count)
            }
            fn access_batch(&self, positions: &[usize]) -> Vec<BitString> {
                (**self).access_batch(positions)
            }
            fn rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
                (**self).rank_batch(queries)
            }
            fn select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>> {
                (**self).select_batch(queries)
            }
            fn count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize> {
                (**self).count_prefix_batch(prefixes)
            }
            fn iter_range_boxed(
                &self,
                l: usize,
                r: usize,
            ) -> Box<dyn Iterator<Item = BitString> + '_> {
                (**self).iter_range_boxed(l, r)
            }
            fn iter_seq_boxed(&self) -> Box<dyn Iterator<Item = BitString> + '_> {
                (**self).iter_seq_boxed()
            }
        }
    };
}

// The shapes concurrent serving hands around: a snapshot (or any other
// index) erased to a trait object and shared across threads. These do not
// overlap the `TrieNav` blanket impl: `TrieNav` is local and unimplemented
// for these pointer types, and no downstream crate can add such an impl
// (no local type of theirs appears).
impl_seq_index_for_pointer!(Box<dyn SeqIndex>);
impl_seq_index_for_pointer!(Box<dyn SeqIndex + Send + Sync>);
impl_seq_index_for_pointer!(std::sync::Arc<dyn SeqIndex>);
impl_seq_index_for_pointer!(std::sync::Arc<dyn SeqIndex + Send + Sync>);

/// Borrowing sequential iterators over an indexed sequence; requires the
/// concrete navigator type (`Sized`), so it lives outside [`SeqIndex`].
pub trait SequenceOps: TrieNav + SeqIndex + Sized {
    /// Sequential iterator over `S[l, r)` (§5 "Sequential access").
    fn iter_range(&self, l: usize, r: usize) -> RangeIter<'_, Self> {
        RangeIter::new(self, l, r)
    }

    /// Iterator over the whole sequence.
    fn iter_seq(&self) -> RangeIter<'_, Self> {
        self.iter_range(0, self.nav_len())
    }

    /// Iterator over the `idx0`-th to `idx1`-th (exclusive) strings having
    /// prefix `p`, in sequence order.
    fn iter_prefix_matches(&self, p: BitStr<'_>, idx0: usize, idx1: usize) -> RangeIter<'_, Self> {
        RangeIter::new_with_prefix(self, p, idx0, idx1)
    }
}

impl<T: TrieNav> SequenceOps for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyn_wt::{AppendWaveletTrie, DynamicWaveletTrie};
    use crate::static_wt::WaveletTrie;

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    /// The query surface must be usable through trait objects: one vector
    /// holding all three paper variants, queried uniformly.
    #[test]
    fn seq_index_is_object_safe() {
        let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100"]
            .iter()
            .map(|s| bs(s))
            .collect();
        let stat = WaveletTrie::build(&seq).unwrap();
        let mut app = AppendWaveletTrie::new();
        let mut dynamic = DynamicWaveletTrie::new();
        for s in &seq {
            app.append(s.as_bitstr()).unwrap();
            dynamic.append(s.as_bitstr()).unwrap();
        }
        let indexes: Vec<Box<dyn SeqIndex>> =
            vec![Box::new(stat), Box::new(app), Box::new(dynamic)];
        for idx in &indexes {
            assert_eq!(idx.seq_len(), 5);
            assert_eq!(idx.access(3), bs("00100"));
            assert_eq!(idx.rank(bs("0100").as_bitstr(), 5), 2);
            assert_eq!(idx.select(bs("0100").as_bitstr(), 1), Some(4));
            assert_eq!(idx.count_prefix(bs("00").as_bitstr()), 3);
            assert_eq!(idx.distinct_len(), 4);
            assert!(idx.admits(bs("0100").as_bitstr()));
            assert!(!idx.admits(bs("01").as_bitstr()));
            assert!(!idx.admits(bs("01000").as_bitstr()));
            let all: Vec<String> = idx.iter_seq_boxed().map(|s| s.to_string()).collect();
            assert_eq!(all, vec!["0001", "0011", "0100", "00100", "0100"]);
            let d = idx.distinct_in_range(0, 5);
            assert_eq!(d.len(), 4);
        }
    }

    /// Erased pointers are `SeqIndex` *themselves* (not just deref-able to
    /// one): a `Arc<dyn SeqIndex + Send + Sync>` must satisfy a generic
    /// `T: SeqIndex` bound, answer identically to the pointee, and hop
    /// threads — the shape concurrent serving hands around.
    #[test]
    fn erased_pointers_implement_seq_index() {
        fn checksum<T: SeqIndex>(idx: &T) -> (usize, usize, usize) {
            (
                idx.seq_len(),
                idx.count_prefix(BitString::parse("00").as_bitstr()),
                idx.distinct_len(),
            )
        }
        let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100"]
            .iter()
            .map(|s| bs(s))
            .collect();
        let stat = WaveletTrie::build(&seq).unwrap();
        let expect = checksum(&stat);
        let boxed: Box<dyn SeqIndex> = Box::new(stat.clone());
        assert_eq!(checksum(&boxed), expect);
        let arc: std::sync::Arc<dyn SeqIndex + Send + Sync> = std::sync::Arc::new(stat.clone());
        assert_eq!(checksum(&arc), expect);
        // Batch overrides must reach the pointee's implementation, not a
        // default loop re-entering the pointer impl.
        let positions: Vec<usize> = (0..seq.len()).collect();
        assert_eq!(arc.access_batch(&positions), stat.access_batch(&positions));
        // And the Arc flavor crosses threads.
        let worker = {
            let arc = std::sync::Arc::clone(&arc);
            std::thread::spawn(move || checksum(&arc))
        };
        assert_eq!(worker.join().unwrap(), expect);
    }

    #[test]
    fn admits_edge_cases() {
        let empty = WaveletTrie::build::<BitString>(&[]).unwrap();
        assert!(empty.admits(bs("").as_bitstr()));
        assert!(empty.admits(bs("0101").as_bitstr()));
        let single: Vec<BitString> = vec![bs("101")];
        let wt = WaveletTrie::build(&single).unwrap();
        assert!(wt.admits(bs("101").as_bitstr()));
        assert!(!wt.admits(bs("10").as_bitstr()));
        assert!(!wt.admits(bs("1011").as_bitstr()));
        assert!(wt.admits(bs("100").as_bitstr()));
        assert!(wt.admits(bs("0").as_bitstr()));
        assert!(!wt.admits(bs("").as_bitstr()));
    }
}
