//! Probabilistically-balanced dynamic Wavelet Trees (§6 of the paper,
//! Theorem 6.2).
//!
//! A sequence of integers from a universe `U = {0, …, 2^w − 1}` is stored in
//! a [`DynamicWaveletTrie`] after hashing each value with the
//! Dietzfelbinger et al. multiplicative permutation `h_a(x) = a·x mod 2^w`
//! (odd `a`), written MSB-first at fixed width `w` (see the bit-order note
//! below). With probability
//! `1 − |Σ|^{-α}` the trie height is at most `(α+2)·log|Σ|`, independent of
//! the universe size — so a working alphabet Σ that is tiny inside a 2^64
//! universe still gets logarithmic-depth operations without knowing Σ in
//! advance. Lemma 6.1 ports the bound; `h_a` is invertible (odd `a` has an
//! inverse mod 2^w), so `Access` can recover the original value.

use crate::binarize::FixedWidthMsb;
use crate::dyn_wt::DynamicWaveletTrie;
use crate::nav::TrieNav;
use crate::ops::{SeqIndex, SequenceOps};
use wt_bits::SpaceUsage;
use wt_trie::BitString;

/// Multiplicative inverse of odd `a` modulo 2^64 (Newton iteration).
fn inverse_mod_2_64(a: u64) -> u64 {
    debug_assert!(a % 2 == 1, "only odd numbers are invertible mod 2^64");
    let mut inv = a; // correct mod 2^3
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(inv)));
    }
    debug_assert_eq!(a.wrapping_mul(inv), 1);
    inv
}

/// A dynamic Rank/Select sequence over integers in `{0, …, 2^width − 1}`
/// with height logarithmic in the *working* alphabet (w.h.p.), not the
/// universe.
#[derive(Clone, Debug)]
pub struct RandomizedWaveletTree {
    inner: DynamicWaveletTrie,
    coder: FixedWidthMsb,
    a: u64,
    a_inv: u64,
    mask: u64,
}

impl RandomizedWaveletTree {
    /// Creates an empty sequence over a `width`-bit universe, drawing the
    /// multiplier from `seed` ("a is chosen at random among the odd
    /// integers" — §6).
    pub fn new(width: u32, seed: u64) -> Self {
        // SplitMix64 step to decorrelate trivial seeds, then force odd.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let a = (z ^ (z >> 31)) | 1;
        Self::with_multiplier(width, a)
    }

    /// Creates with an explicit odd multiplier (tests, reproducibility).
    ///
    /// # Panics
    /// If `a` is even or `width` is not in `1..=64`.
    pub fn with_multiplier(width: u32, a: u64) -> Self {
        assert!(a % 2 == 1, "multiplier must be odd");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        RandomizedWaveletTree {
            inner: DynamicWaveletTrie::new(),
            coder: FixedWidthMsb::new(width),
            a,
            a_inv: inverse_mod_2_64(a),
            mask,
        }
    }

    /// Identity layout (no hashing): exposes the §6 motivation — adversarial
    /// value sets produce a trie as deep as `width = log u`.
    pub fn unhashed(width: u32) -> Self {
        Self::with_multiplier(width, 1)
    }

    #[inline]
    fn encode(&self, x: u64) -> BitString {
        assert!(x <= self.mask, "value exceeds the declared universe");
        self.coder.encode_u64(self.a.wrapping_mul(x) & self.mask)
    }

    #[inline]
    fn decode(&self, b: &BitString) -> u64 {
        self.a_inv
            .wrapping_mul(self.coder.decode_u64(b.as_bitstr()))
            & self.mask
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `Insert(x, pos)`.
    pub fn insert(&mut self, x: u64, pos: usize) {
        let e = self.encode(x);
        self.inner
            .insert(e.as_bitstr(), pos)
            .expect("fixed-width strings are prefix-free");
    }

    /// Appends `x`.
    pub fn push(&mut self, x: u64) {
        self.insert(x, self.len());
    }

    /// `Delete(pos)`: removes and returns the value at `pos`.
    pub fn remove(&mut self, pos: usize) -> u64 {
        let removed = self.inner.delete(pos);
        self.decode(&removed)
    }

    /// `Access(pos)`.
    pub fn get(&self, pos: usize) -> u64 {
        self.decode(&self.inner.access(pos))
    }

    /// `Rank(x, pos)`: occurrences of `x` before `pos`.
    pub fn rank(&self, x: u64, pos: usize) -> usize {
        self.inner.rank(self.encode(x).as_bitstr(), pos)
    }

    /// `Select(x, idx)`: position of the `idx`-th occurrence of `x`.
    pub fn select(&self, x: u64, idx: usize) -> Option<usize> {
        self.inner.select(self.encode(x).as_bitstr(), idx)
    }

    /// Occurrences of `x` in the whole sequence.
    pub fn count(&self, x: u64) -> usize {
        self.inner.count(self.encode(x).as_bitstr())
    }

    /// Number of distinct values (|Σ| working alphabet size).
    pub fn distinct_len(&self) -> usize {
        self.inner.distinct_len()
    }

    /// Trie height (the quantity Theorem 6.2 bounds by `(α+2)·log|Σ|` w.h.p.).
    pub fn height(&self) -> usize {
        self.inner.height()
    }

    /// The underlying Wavelet Trie (for experiments).
    pub fn inner(&self) -> &DynamicWaveletTrie {
        &self.inner
    }

    /// Iterates values in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.inner.iter_seq().map(move |b| self.decode(&b))
    }
}

impl SpaceUsage for RandomizedWaveletTree {
    fn size_bits(&self) -> usize {
        self.inner.size_bits() + 4 * 64
    }
}

/// Height of the Patricia trie on the *unhashed* encodings — the baseline
/// §6 improves on (can reach `log u` for adversarial value sets).
pub fn unhashed_height(values: &[u64], width: u32) -> usize {
    let mut t = RandomizedWaveletTree::unhashed(width);
    for &v in values {
        t.push(v);
    }
    t.height()
}

// Re-export for the balance experiment: the trie must also be reachable
// through `TrieNav` for generic inspection.
impl TrieNav for RandomizedWaveletTree {
    type Node<'a> = <DynamicWaveletTrie as TrieNav>::Node<'a>;

    fn nav_root(&self) -> Option<Self::Node<'_>> {
        self.inner.nav_root()
    }
    fn nav_len(&self) -> usize {
        self.inner.nav_len()
    }
    fn nav_is_leaf<'a>(&'a self, v: Self::Node<'a>) -> bool {
        self.inner.nav_is_leaf(v)
    }
    fn nav_child<'a>(&'a self, v: Self::Node<'a>, bit: bool) -> Self::Node<'a> {
        self.inner.nav_child(v, bit)
    }
    fn nav_label_len<'a>(&'a self, v: Self::Node<'a>) -> usize {
        self.inner.nav_label_len(v)
    }
    fn nav_label_bit<'a>(&'a self, v: Self::Node<'a>, i: usize) -> bool {
        self.inner.nav_label_bit(v, i)
    }
    fn nav_label_lcp<'a>(&'a self, v: Self::Node<'a>, s: wt_trie::BitStr<'_>) -> usize {
        self.inner.nav_label_lcp(v, s)
    }
    fn nav_label_append<'a>(&'a self, v: Self::Node<'a>, out: &mut BitString) {
        self.inner.nav_label_append(v, out)
    }
    fn nav_bv_len<'a>(&'a self, v: Self::Node<'a>) -> usize {
        self.inner.nav_bv_len(v)
    }
    fn nav_bv_get<'a>(&'a self, v: Self::Node<'a>, i: usize) -> bool {
        self.inner.nav_bv_get(v, i)
    }
    fn nav_bv_rank<'a>(&'a self, v: Self::Node<'a>, bit: bool, i: usize) -> usize {
        self.inner.nav_bv_rank(v, bit, i)
    }
    fn nav_bv_select<'a>(&'a self, v: Self::Node<'a>, bit: bool, k: usize) -> Option<usize> {
        self.inner.nav_bv_select(v, bit, k)
    }
    fn nav_key<'a>(&'a self, v: Self::Node<'a>) -> usize {
        self.inner.nav_key(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_works() {
        for a in [1u64, 3, 5, 0xDEAD_BEEF | 1, u64::MAX] {
            let inv = inverse_mod_2_64(a);
            assert_eq!(a.wrapping_mul(inv), 1, "a={a}");
        }
    }

    #[test]
    fn roundtrip_all_ops() {
        let mut t = RandomizedWaveletTree::new(64, 42);
        let vals = [7u64, 1 << 60, 7, 42, 0, 42, 7, u64::MAX];
        for &v in &vals {
            t.push(v);
        }
        assert_eq!(t.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(t.get(i), v, "get({i})");
        }
        assert_eq!(t.count(7), 3);
        assert_eq!(t.count(42), 2);
        assert_eq!(t.count(12345), 0);
        assert_eq!(t.rank(7, 4), 2);
        assert_eq!(t.select(7, 2), Some(6));
        assert_eq!(t.select(7, 3), None);
        let collected: Vec<u64> = t.iter().collect();
        assert_eq!(collected, vals);
    }

    #[test]
    fn insert_delete_middle() {
        let mut t = RandomizedWaveletTree::new(32, 7);
        let mut model: Vec<u64> = Vec::new();
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..300 {
            if model.is_empty() || next() % 3 != 0 {
                let v = next() % 50; // small working alphabet
                let pos = (next() % (model.len() as u64 + 1)) as usize;
                t.insert(v, pos);
                model.insert(pos, v);
            } else {
                let pos = (next() % model.len() as u64) as usize;
                assert_eq!(t.remove(pos), model.remove(pos));
            }
        }
        let collected: Vec<u64> = t.iter().collect();
        assert_eq!(collected, model);
    }

    #[test]
    fn hashing_balances_pathological_values() {
        // §6 motivation: the powers of two form a comb — the unhashed trie
        // is a chain of height ~log u = 64 with only |Σ| = 64 values; after
        // hashing the height is O(log |Σ|) w.h.p.
        let values: Vec<u64> = (0..64u64).map(|j| 1u64 << j).collect();
        let deep = unhashed_height(&values, 64);
        let mut hashed = RandomizedWaveletTree::new(64, 12345);
        for &v in &values {
            hashed.push(v);
        }
        let shallow = hashed.height();
        assert!(deep >= 50, "power-of-two comb should be deep: {deep}");
        // (α+2)·log|Σ| with α=2: 4·6 = 24; allow some slack.
        assert!(
            shallow <= 30,
            "hashed height {shallow} should be O(log |Σ|) = ~24"
        );
        assert!(shallow >= 6, "can't beat log|Σ| = 6: {shallow}");
    }

    #[test]
    fn width_smaller_than_64() {
        let mut t = RandomizedWaveletTree::new(16, 3);
        for v in 0..100u64 {
            t.push(v % 1000 % 65536);
        }
        for i in 0..100 {
            assert_eq!(t.get(i), (i as u64) % 1000);
        }
    }
}
