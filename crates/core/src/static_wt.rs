//! The static Wavelet Trie (§3, Theorem 3.7).
//!
//! Representation exactly as in the paper:
//! * tree shape: DFUDS (2 bits per node + o());
//! * node labels α concatenated in preorder into the bitvector `L`,
//!   delimited by an Elias–Fano partial-sum structure;
//! * node bitvectors β concatenated in (internal-node) preorder, compressed
//!   with RRR, delimited by a second Elias–Fano structure.
//!
//! Space is `LT(Sset) + nH0(S) + o(h̃n)` bits (Theorem 3.7) — measured and
//! reported by [`WaveletTrie::space_breakdown`]; operations are
//! O(|s| + h_s).

use crate::nav::TrieNav;
use wt_bits::persist::{kind, Archive, ArchiveWriter, LoadError, Persist};
use wt_bits::{BitAccess, BitRank, BitSelect, EliasFano, Fid, RawBitVec, RrrVector, SpaceUsage};
use wt_trie::dfuds::Dfuds;
use wt_trie::{BitStr, BitString, PrefixFreeViolation};

/// An immutable compressed indexed sequence of binary strings.
#[derive(Clone, Debug)]
pub struct WaveletTrie {
    pub(crate) n: usize,
    pub(crate) tree: Dfuds,
    /// Concatenated labels (all nodes, preorder; root label included).
    pub(crate) labels: RawBitVec,
    /// Prefix sums of label lengths, indexed by preorder id (len = nodes+1).
    pub(crate) label_bounds: EliasFano,
    /// Preorder id → is internal.
    pub(crate) internal: Fid,
    /// Concatenated internal-node bitvectors, preorder order, RRR-compressed.
    pub(crate) bvs: RrrVector,
    /// Prefix sums of bitvector lengths (len = internals+1).
    pub(crate) bv_bounds: EliasFano,
    /// Prefix sums of per-node ones (len = internals+1): rank at each
    /// node's segment start in O(1), halving the bitvector probes of every
    /// in-node rank/select.
    pub(crate) bv_ones: EliasFano,
    /// `n·H0(S)` in bits, computed during construction (for the space report).
    nh0_bits: f64,
    /// Length of the root label (excluded from `|L|` in Theorem 3.6).
    root_label_len: usize,
}

/// Measured space of each component of the static Wavelet Trie, against the
/// information-theoretic quantities of §3 (experiment E4).
#[derive(Clone, Copy, Debug)]
pub struct StaticSpaceBreakdown {
    /// Sequence length n.
    pub n: usize,
    /// Distinct strings |Sset|.
    pub distinct: usize,
    /// DFUDS bits including rank/select/rmM directories.
    pub tree_bits: usize,
    /// Raw concatenated label bits (all nodes).
    pub label_bits: usize,
    /// Elias–Fano delimiters for labels.
    pub label_delim_bits: usize,
    /// RRR-compressed bitvector bits (including directories).
    pub bv_bits: usize,
    /// Elias–Fano delimiters for bitvectors.
    pub bv_delim_bits: usize,
    /// Internal-flag FID bits.
    pub flags_bits: usize,
    /// Total measured bits.
    pub total_bits: usize,
    /// `LT(Sset)` lower bound of Theorem 3.6 (bits).
    pub lt_bits: f64,
    /// `n·H0(S)` (bits).
    pub nh0_bits: f64,
    /// `LB = LT + nH0` (bits).
    pub lb_bits: f64,
    /// `h̃·n`: total bitvector length (bits) — the redundancy scale o(h̃n).
    pub hn_bits: usize,
}

/// The preorder raw material of a static Wavelet Trie, produced either by
/// the recursive builder or by the structural freeze of a dynamic trie
/// (`crate::convert`), and assembled into the succinct directories by
/// [`WaveletTrie::assemble`].
pub(crate) struct StaticParts {
    pub n: usize,
    /// Preorder node degrees (0 or 2).
    pub degrees: Vec<usize>,
    /// Concatenated node labels, preorder.
    pub labels: RawBitVec,
    /// Per-node label lengths, preorder.
    pub label_lens: Vec<u64>,
    /// Concatenated internal-node bitvectors, preorder.
    pub bv_concat: RawBitVec,
    /// Per-internal-node bitvector lengths.
    pub bv_lens: Vec<u64>,
    /// Per-internal-node ones counts.
    pub bv_ones: Vec<u64>,
    /// `n·H0(S)` in bits.
    pub nh0_bits: f64,
    /// Length of the root label.
    pub root_label_len: usize,
}

impl StaticParts {
    pub(crate) fn empty() -> Self {
        StaticParts {
            n: 0,
            degrees: Vec::new(),
            labels: RawBitVec::new(),
            label_lens: Vec::new(),
            bv_concat: RawBitVec::new(),
            bv_lens: Vec::new(),
            bv_ones: Vec::new(),
            nh0_bits: 0.0,
            root_label_len: 0,
        }
    }
}

/// Below this many strings a parallel build is not worth the thread spawns.
const PAR_BUILD_MIN: usize = 1 << 15;

/// Default construction thread count: serial for small inputs, the
/// machine's parallelism (bounded) for large ones.
fn auto_threads(n_strings: usize) -> usize {
    if n_strings < PAR_BUILD_MIN {
        1
    } else {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// A pending subtree of the partition recursion: the (still unsorted)
/// sequence positions below this node and the bit offset they share.
struct Frame {
    idx: Vec<u32>,
    delta: usize,
}

/// The preorder raw parts of a contiguous node range — one worker's share
/// of a parallel build, or the whole tree in a serial one.
#[derive(Default)]
struct PartsChunk {
    degrees: Vec<usize>,
    labels: RawBitVec,
    label_lens: Vec<u64>,
    bv_concat: RawBitVec,
    bv_lens: Vec<u64>,
    bv_ones: Vec<u64>,
    nh0: f64,
}

/// Emits `frame`'s node (Definition 3.1) into `chunk`; returns the child
/// frames (child 0 first) when the node is internal.
fn emit_node(
    views: &[BitStr<'_>],
    frame: Frame,
    n_total: usize,
    chunk: &mut PartsChunk,
) -> Result<Option<(Frame, Frame)>, PrefixFreeViolation> {
    let Frame { idx, delta } = frame;
    let first = views[idx[0] as usize].suffix(delta);
    let mut l = first.len();
    let mut min_rem = first.len();
    let mut max_rem = first.len();
    for &i in &idx[1..] {
        let other = views[i as usize].suffix(delta);
        min_rem = min_rem.min(other.len());
        max_rem = max_rem.max(other.len());
        if l > 0 {
            let cap = l.min(other.len());
            l = first.prefix(cap).lcp(&other.prefix(cap));
        }
    }
    l = l.min(min_rem);
    if l == min_rem && min_rem != max_rem {
        // Some string ends where another continues: not prefix-free.
        return Err(PrefixFreeViolation);
    }
    first.prefix(l).append_into(&mut chunk.labels);
    chunk.label_lens.push(l as u64);
    if l == min_rem {
        // All strings identical from delta: a leaf (Def. 3.1 case i).
        chunk.degrees.push(0);
        let c = idx.len() as f64;
        chunk.nh0 += c * (n_total as f64 / c).log2();
        return Ok(None);
    }
    // Internal node (Def. 3.1 case ii).
    chunk.degrees.push(2);
    let branch = delta + l;
    let mut idx0 = Vec::new();
    let mut idx1 = Vec::new();
    for &i in &idx {
        let b = views[i as usize].get(branch);
        chunk.bv_concat.push(b);
        if b {
            idx1.push(i);
        } else {
            idx0.push(i);
        }
    }
    chunk.bv_lens.push(idx.len() as u64);
    chunk.bv_ones.push(idx1.len() as u64);
    debug_assert!(!idx0.is_empty() && !idx1.is_empty());
    Ok(Some((
        Frame {
            idx: idx0,
            delta: branch + 1,
        },
        Frame {
            idx: idx1,
            delta: branch + 1,
        },
    )))
}

/// Runs the partition recursion for one whole subtree, emitting its nodes
/// in preorder (child 1 is pushed below child 0 on the explicit stack).
fn build_chunk(
    views: &[BitStr<'_>],
    root: Frame,
    n_total: usize,
) -> Result<PartsChunk, PrefixFreeViolation> {
    let mut chunk = PartsChunk::default();
    let mut stack = vec![root];
    while let Some(f) = stack.pop() {
        if let Some((f0, f1)) = emit_node(views, f, n_total, &mut chunk)? {
            stack.push(f1);
            stack.push(f0);
        }
    }
    Ok(chunk)
}

/// Concatenates preorder chunks back into one [`StaticParts`].
fn parts_from_chunks(n: usize, chunks: Vec<PartsChunk>) -> StaticParts {
    let mut it = chunks.into_iter();
    let first = it.next().expect("at least one chunk");
    let mut acc = first;
    for c in it {
        acc.degrees.extend_from_slice(&c.degrees);
        acc.labels.extend_from_range(&c.labels, 0, c.labels.len());
        acc.label_lens.extend_from_slice(&c.label_lens);
        acc.bv_concat
            .extend_from_range(&c.bv_concat, 0, c.bv_concat.len());
        acc.bv_lens.extend_from_slice(&c.bv_lens);
        acc.bv_ones.extend_from_slice(&c.bv_ones);
        acc.nh0 += c.nh0;
    }
    let root_label_len = acc.label_lens.first().copied().unwrap_or(0) as usize;
    StaticParts {
        n,
        degrees: acc.degrees,
        labels: acc.labels,
        label_lens: acc.label_lens,
        bv_concat: acc.bv_concat,
        bv_lens: acc.bv_lens,
        bv_ones: acc.bv_ones,
        nh0_bits: acc.nh0,
        root_label_len,
    }
}

impl WaveletTrie {
    /// Builds the Wavelet Trie of a sequence of binary strings
    /// (Definition 3.1).
    ///
    /// # Errors
    /// [`PrefixFreeViolation`] if the underlying string set is not
    /// prefix-free (§3 requires it; see [`crate::binarize`] for coders that
    /// guarantee it).
    pub fn from_bitstrings<I>(seq: I) -> Result<Self, PrefixFreeViolation>
    where
        I: IntoIterator<Item = BitString>,
    {
        let strings: Vec<BitString> = seq.into_iter().collect();
        Self::build(&strings)
    }

    /// Builds from a slice of (owned or borrowed) binary strings without
    /// copying any of them.
    pub fn build<S: std::borrow::Borrow<BitString>>(
        strings: &[S],
    ) -> Result<Self, PrefixFreeViolation> {
        Self::from_views(strings.iter().map(|s| s.borrow().as_bitstr()))
    }

    /// Like [`WaveletTrie::build`] with an explicit construction thread
    /// count (see [`WaveletTrie::from_views_with_threads`]).
    pub fn build_with_threads<S: std::borrow::Borrow<BitString>>(
        strings: &[S],
        threads: usize,
    ) -> Result<Self, PrefixFreeViolation> {
        Self::from_views_with_threads(strings.iter().map(|s| s.borrow().as_bitstr()), threads)
    }

    /// Builds from borrowed bit-string views. This is the zero-copy entry
    /// point: the builder reads every input in place and copies each bit
    /// exactly once, into the label / bitvector concatenations. Large
    /// inputs are built with a scoped worker pool
    /// ([`WaveletTrie::from_views_with_threads`] with the available
    /// parallelism); the result is identical either way.
    pub fn from_views<'a, I>(seq: I) -> Result<Self, PrefixFreeViolation>
    where
        I: IntoIterator<Item = BitStr<'a>>,
    {
        let views: Vec<BitStr<'a>> = seq.into_iter().collect();
        Self::build_views(&views, auto_threads(views.len()))
    }

    /// Builds with an explicit thread count: the partition recursion splits
    /// subtries across `threads` scoped worker threads once the preorder
    /// spine has produced enough independent subtrees, and the succinct
    /// assembly encodes its components (DFUDS, RRR blocks, delimiters)
    /// concurrently. `threads <= 1` is the serial construction; any value
    /// produces a **bit-identical** structure, since workers emit the same
    /// preorder chunks the serial walk would.
    pub fn from_views_with_threads<'a, I>(
        seq: I,
        threads: usize,
    ) -> Result<Self, PrefixFreeViolation>
    where
        I: IntoIterator<Item = BitStr<'a>>,
    {
        let views: Vec<BitStr<'a>> = seq.into_iter().collect();
        Self::build_views(&views, threads)
    }

    fn build_views(views: &[BitStr<'_>], threads: usize) -> Result<Self, PrefixFreeViolation> {
        let n = views.len();
        if n == 0 {
            return Ok(Self::assemble(StaticParts::empty()));
        }
        let threads = threads.max(1);
        let root = Frame {
            idx: (0..n as u32).collect(),
            delta: 0,
        };
        if threads == 1 {
            let chunk = build_chunk(views, root, n)?;
            let parts = parts_from_chunks(n, vec![chunk]);
            return Ok(Self::assemble(parts));
        }
        // Parallel build: the main thread walks the preorder "spine" —
        // nodes whose subsequence is still large — and defers every
        // subtree at or below `cutoff` strings as an independent task.
        // Because frames pop in preorder and a subtree's nodes are
        // preorder-contiguous, stitching the spine pieces and task chunks
        // back in emission order reproduces the serial preorder exactly.
        enum Piece {
            Done(PartsChunk),
            Task(usize),
        }
        let cutoff = (n / (threads * 8)).max(1024);
        let mut pieces: Vec<Piece> = Vec::new();
        let mut tasks: Vec<Frame> = Vec::new();
        let mut cur = PartsChunk::default();
        let mut stack = vec![root];
        while let Some(f) = stack.pop() {
            if f.idx.len() <= cutoff {
                if !cur.degrees.is_empty() {
                    pieces.push(Piece::Done(std::mem::take(&mut cur)));
                }
                pieces.push(Piece::Task(tasks.len()));
                tasks.push(f);
                continue;
            }
            if let Some((f0, f1)) = emit_node(views, f, n, &mut cur)? {
                stack.push(f1);
                stack.push(f0);
            }
        }
        if !cur.degrees.is_empty() {
            pieces.push(Piece::Done(cur));
        }
        let n_tasks = tasks.len();
        let n_workers = threads.min(n_tasks).max(1);
        let mut buckets: Vec<Vec<(usize, Frame)>> = (0..n_workers).map(|_| Vec::new()).collect();
        for (i, f) in tasks.into_iter().enumerate() {
            buckets[i % n_workers].push((i, f));
        }
        let mut results: Vec<Option<Result<PartsChunk, PrefixFreeViolation>>> =
            (0..n_tasks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    s.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(i, f)| (i, build_chunk(views, f, n)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("build worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        let mut chunks = Vec::with_capacity(pieces.len());
        for p in pieces {
            match p {
                Piece::Done(c) => chunks.push(c),
                Piece::Task(i) => chunks.push(results[i].take().expect("task ran")?),
            }
        }
        Ok(Self::assemble_with_threads(
            parts_from_chunks(n, chunks),
            threads,
        ))
    }

    /// Compresses preorder raw parts into the succinct representation of
    /// Theorem 3.7 (DFUDS + Elias–Fano delimiters + RRR bitvectors).
    pub(crate) fn assemble(parts: StaticParts) -> Self {
        let StaticParts {
            n,
            degrees,
            labels,
            label_lens,
            bv_concat,
            bv_lens,
            bv_ones,
            nh0_bits,
            root_label_len,
        } = parts;
        let tree = Dfuds::from_degrees(degrees.iter().copied());
        let label_bounds = EliasFano::prefix_sums(label_lens.iter().copied());
        let internal = Fid::from_bits(degrees.iter().map(|&d| d == 2));
        let bv_bounds = EliasFano::prefix_sums(bv_lens.iter().copied());
        let bv_ones = EliasFano::prefix_sums(bv_ones.iter().copied());
        let bvs = RrrVector::new(&bv_concat);
        WaveletTrie {
            n,
            tree,
            labels,
            label_bounds,
            internal,
            bvs,
            bv_bounds,
            bv_ones,
            nh0_bits,
            root_label_len,
        }
    }

    /// [`WaveletTrie::assemble`] with the component builds spread over
    /// scoped threads: the DFUDS/rmM tree and the RRR encoding (itself
    /// chunk-parallel, the dominant cost) run on workers while the main
    /// thread builds the Elias–Fano delimiters and the internal-flag FID.
    /// Bit-identical to the serial assembly.
    pub(crate) fn assemble_with_threads(parts: StaticParts, threads: usize) -> Self {
        if threads <= 1 {
            return Self::assemble(parts);
        }
        let StaticParts {
            n,
            degrees,
            labels,
            label_lens,
            bv_concat,
            bv_lens,
            bv_ones,
            nh0_bits,
            root_label_len,
        } = parts;
        let (tree, bvs, label_bounds, internal, bv_bounds, bv_ones) = std::thread::scope(|s| {
            let t_tree = s.spawn(|| Dfuds::from_degrees(degrees.iter().copied()));
            let t_bvs = s.spawn(|| RrrVector::from_raw_with_threads(&bv_concat, threads));
            let label_bounds = EliasFano::prefix_sums(label_lens.iter().copied());
            let internal = Fid::from_bits(degrees.iter().map(|&d| d == 2));
            let bv_bounds = EliasFano::prefix_sums(bv_lens.iter().copied());
            let bv_ones = EliasFano::prefix_sums(bv_ones.iter().copied());
            (
                t_tree.join().expect("DFUDS build panicked"),
                t_bvs.join().expect("RRR build panicked"),
                label_bounds,
                internal,
                bv_bounds,
                bv_ones,
            )
        });
        WaveletTrie {
            n,
            tree,
            labels,
            label_bounds,
            internal,
            bvs,
            bv_bounds,
            bv_ones,
            nh0_bits,
            root_label_len,
        }
    }

    /// Sequence length n.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of trie nodes (2|Sset| − 1 for |Sset| ≥ 1).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }

    /// Number of distinct strings (= trie leaves), O(1) off the
    /// internal-flag directory: leaves = nodes − internal nodes.
    #[inline]
    pub fn n_distinct(&self) -> usize {
        self.internal.len() - self.internal.count_ones()
    }

    #[inline]
    fn label_range(&self, v: usize) -> (usize, usize) {
        let pid = self.tree.preorder(v);
        let (s, e) = self.label_bounds.get_pair(pid);
        (s as usize, e as usize)
    }

    #[inline]
    fn bv_range(&self, v: usize) -> (usize, usize) {
        let j = self.bv_index(v);
        let (s, e) = self.bv_bounds.get_pair(j);
        (s as usize, e as usize)
    }

    /// Index of internal node `v` into the bitvector directories.
    #[inline]
    fn bv_index(&self, v: usize) -> usize {
        let pid = self.tree.preorder(v);
        debug_assert!(self.internal.get(pid));
        self.internal.rank1(pid)
    }

    /// Child of internal node `v` on branch `bit`, given `v`'s internal
    /// index `j` (which every descent computes anyway for the bitvector
    /// directories). Wavelet-Trie internal nodes always have degree 2
    /// ("110" in DFUDS), so child 0 follows immediately at `v + 3` and
    /// child 1 comes from the O(1) skip directory — no balanced-
    /// parenthesis excursion on the query path.
    #[inline]
    pub(crate) fn child_fast(&self, v: usize, j: usize, bit: bool) -> usize {
        debug_assert!(!self.tree.is_leaf(v), "child_fast on a leaf");
        if !bit {
            return v + 3;
        }
        match self.tree.child1_by_internal_rank(j) {
            Some(p) => {
                // Pins the alignment invariant the directory relies on:
                // `internal` ranks degree-2 nodes while the directory is
                // indexed by degree-≥1 rank — identical for Wavelet Tries,
                // whose internal nodes are always binary.
                debug_assert_eq!(p, self.tree.child(v, 1), "child-1 directory misaligned");
                p
            }
            None => self.tree.child(v, 1),
        }
    }

    /// Bits of internal node `v`'s bitvector, in order (used by `thaw`,
    /// which wants the segment bounds resolved once, not per bit).
    pub(crate) fn bv_bits(&self, v: usize) -> impl Iterator<Item = bool> + '_ {
        let (s, e) = self.bv_range(v);
        (s..e).map(move |i| self.bvs.get(i))
    }

    /// Measured vs. information-theoretic space (experiment E4).
    pub fn space_breakdown(&self) -> StaticSpaceBreakdown {
        let distinct = if self.n == 0 {
            0
        } else {
            self.tree.n_nodes().div_ceil(2)
        };
        let tree_bits = self.tree.size_bits();
        let label_bits = self.labels.len();
        let label_delim_bits = self.label_bounds.size_bits();
        let bv_bits = self.bvs.size_bits();
        // Delimiters + the per-node ones directory that backs O(1)
        // segment-start ranks.
        let bv_delim_bits = self.bv_bounds.size_bits() + self.bv_ones.size_bits();
        let flags_bits = self.internal.size_bits();
        let total_bits = self.labels.size_bits()
            + tree_bits
            + label_delim_bits
            + bv_bits
            + bv_delim_bits
            + flags_bits;
        // LT(Sset) = |L| + e + B(e, |L| + e), L excluding the root label.
        let l_bits = label_bits.saturating_sub(self.root_label_len);
        let e = self.tree.n_nodes().saturating_sub(1);
        let lt_bits = if distinct <= 1 {
            l_bits as f64
        } else {
            l_bits as f64 + e as f64 + wt_bits::entropy::binomial_bound_bits(l_bits + e, e)
        };
        StaticSpaceBreakdown {
            n: self.n,
            distinct,
            tree_bits,
            label_bits,
            label_delim_bits,
            bv_bits,
            bv_delim_bits,
            flags_bits,
            total_bits,
            lt_bits,
            nh0_bits: self.nh0_bits,
            lb_bits: lt_bits + self.nh0_bits,
            hn_bits: self.bvs.len(),
        }
    }

    /// `n·H0(S)` in bits.
    pub fn nh0_bits(&self) -> f64 {
        self.nh0_bits
    }
}

// --- persistence -------------------------------------------------------------

/// Section tags of a Wavelet-Trie archive, one per component.
mod sec {
    pub const META: u32 = 0;
    pub const TREE: u32 = 1;
    pub const LABELS: u32 = 2;
    pub const LABEL_BOUNDS: u32 = 3;
    pub const INTERNAL: u32 = 4;
    pub const BVS: u32 = 5;
    pub const BV_BOUNDS: u32 = 6;
    pub const BV_ONES: u32 = 7;
}

fn push_section<T: Persist>(w: &mut ArchiveWriter, tag: u32, value: &T) {
    let mut payload = Vec::new();
    value.encode(&mut payload);
    w.section(tag, payload);
}

fn read_section<T: Persist>(a: &Archive, tag: u32) -> Result<T, LoadError> {
    let mut r = a.section(tag)?;
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

impl WaveletTrie {
    /// Serializes to a versioned archive (see [`wt_bits::persist`]): one
    /// section per succinct component, each individually checksummed.
    pub fn save_bytes(&self) -> Vec<u8> {
        self.write_archive(kind::WAVELET_TRIE)
    }

    /// Loads an archive written by [`WaveletTrie::save_bytes`].
    ///
    /// *Validate-then-view*: after the header, bounds and checksum checks
    /// every component reinterprets its section of the (single) archive
    /// buffer in place — no bitvector is decoded or rebuilt, so loading is
    /// O(bytes) with a small constant.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, LoadError> {
        Self::read_archive(bytes, kind::WAVELET_TRIE)
    }

    /// [`WaveletTrie::save_bytes`] to a file, atomically: the bytes go to
    /// a sibling `*.tmp` which is fsynced and renamed over `path`, so a
    /// crash mid-save never leaves a torn archive under the final name.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        wt_bits::write_atomic(&wt_bits::FsStorage, path.as_ref(), &self.save_bytes())
    }

    /// [`WaveletTrie::load_bytes`] from a file. Errors are tagged with
    /// the offending path ([`LoadError::InFile`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, LoadError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| LoadError::from(e).in_file(path))?;
        Self::load_bytes(&bytes).map_err(|e| e.in_file(path))
    }

    pub(crate) fn write_archive(&self, archive_kind: u32) -> Vec<u8> {
        let mut w = ArchiveWriter::new(archive_kind);
        w.section(
            sec::META,
            vec![
                self.n as u64,
                self.nh0_bits.to_bits(),
                self.root_label_len as u64,
            ],
        );
        push_section(&mut w, sec::TREE, &self.tree);
        push_section(&mut w, sec::LABELS, &self.labels);
        push_section(&mut w, sec::LABEL_BOUNDS, &self.label_bounds);
        push_section(&mut w, sec::INTERNAL, &self.internal);
        push_section(&mut w, sec::BVS, &self.bvs);
        push_section(&mut w, sec::BV_BOUNDS, &self.bv_bounds);
        push_section(&mut w, sec::BV_ONES, &self.bv_ones);
        w.finish()
    }

    pub(crate) fn read_archive(bytes: &[u8], archive_kind: u32) -> Result<Self, LoadError> {
        let a = Archive::parse(bytes, archive_kind)?;
        let mut meta = a.section(sec::META)?;
        let n = meta.read_len()?;
        let nh0_bits = meta.read_f64()?;
        let root_label_len = meta.read_len()?;
        meta.finish()?;
        let tree: Dfuds = read_section(&a, sec::TREE)?;
        let labels: RawBitVec = read_section(&a, sec::LABELS)?;
        let label_bounds: EliasFano = read_section(&a, sec::LABEL_BOUNDS)?;
        let internal: Fid = read_section(&a, sec::INTERNAL)?;
        let bvs: RrrVector = read_section(&a, sec::BVS)?;
        let bv_bounds: EliasFano = read_section(&a, sec::BV_BOUNDS)?;
        let bv_ones: EliasFano = read_section(&a, sec::BV_ONES)?;
        // Cross-component invariants — O(1) directory-length probes that
        // pin every index computed on the query path inside bounds.
        let n_nodes = tree.n_nodes();
        if (n == 0) != (n_nodes == 0) {
            return Err(LoadError::Invalid("empty trie encoding"));
        }
        if n_nodes > 0 && n < n_nodes.div_ceil(2) {
            return Err(LoadError::Invalid("fewer strings than leaves"));
        }
        if label_bounds.len() != n_nodes + 1 {
            return Err(LoadError::Invalid("label delimiter count"));
        }
        if labels.len() as u64 != label_bounds.get(n_nodes) {
            return Err(LoadError::Invalid("label concatenation length"));
        }
        if root_label_len > labels.len() {
            return Err(LoadError::Invalid("root label length"));
        }
        if internal.len() != n_nodes {
            return Err(LoadError::Invalid("internal-flag length"));
        }
        let internals = internal.count_ones();
        if bv_bounds.len() != internals + 1 || bv_ones.len() != internals + 1 {
            return Err(LoadError::Invalid("bitvector delimiter count"));
        }
        if bvs.len() as u64 != bv_bounds.get(internals) {
            return Err(LoadError::Invalid("bitvector concatenation length"));
        }
        if bvs.count_ones() as u64 != bv_ones.get(internals) {
            return Err(LoadError::Invalid("bitvector ones directory"));
        }
        if !nh0_bits.is_finite() || nh0_bits < 0.0 {
            return Err(LoadError::Invalid("entropy metadata"));
        }
        Ok(WaveletTrie {
            n,
            tree,
            labels,
            label_bounds,
            internal,
            bvs,
            bv_bounds,
            bv_ones,
            nh0_bits,
            root_label_len,
        })
    }
}

impl SpaceUsage for WaveletTrie {
    fn size_bits(&self) -> usize {
        self.space_breakdown().total_bits
    }
}

impl TrieNav for WaveletTrie {
    type Node<'a> = usize;

    #[inline]
    fn nav_root(&self) -> Option<usize> {
        if self.n == 0 {
            None
        } else {
            self.tree.root()
        }
    }

    #[inline]
    fn nav_len(&self) -> usize {
        self.n
    }

    #[inline]
    fn nav_is_leaf(&self, v: usize) -> bool {
        self.tree.is_leaf(v)
    }

    #[inline]
    fn nav_child(&self, v: usize, bit: bool) -> usize {
        debug_assert!(!self.tree.is_leaf(v), "nav_child on a leaf");
        if !bit {
            // Degree-2 encoding "110": child 0 is the next node.
            return v + 3;
        }
        let j = self.internal.rank1(self.tree.preorder(v));
        self.child_fast(v, j, true)
    }

    #[inline]
    fn nav_label_len(&self, v: usize) -> usize {
        let (s, e) = self.label_range(v);
        e - s
    }

    #[inline]
    fn nav_label_bit(&self, v: usize, i: usize) -> bool {
        let (s, e) = self.label_range(v);
        debug_assert!(i < e - s);
        self.labels.get(s + i)
    }

    #[inline]
    fn nav_label_lcp(&self, v: usize, s: BitStr<'_>) -> usize {
        let (ls, le) = self.label_range(v);
        BitStr::new(&self.labels, ls, le - ls).lcp(&s)
    }

    #[inline]
    fn nav_label_append(&self, v: usize, out: &mut BitString) {
        let (ls, le) = self.label_range(v);
        out.push_str(BitStr::new(&self.labels, ls, le - ls));
    }

    #[inline]
    fn nav_bv_len(&self, v: usize) -> usize {
        let (s, e) = self.bv_range(v);
        e - s
    }

    #[inline]
    fn nav_bv_get(&self, v: usize, i: usize) -> bool {
        let j = self.bv_index(v);
        let s = self.bv_bounds.get(j) as usize;
        self.bvs.get(s + i)
    }

    #[inline]
    fn nav_bv_rank(&self, v: usize, bit: bool, i: usize) -> usize {
        let j = self.bv_index(v);
        let s = self.bv_bounds.get(j) as usize;
        let ones_before = self.bv_ones.get(j) as usize;
        let r1 = self.bvs.rank1(s + i);
        if bit {
            r1 - ones_before
        } else {
            (s + i - r1) - (s - ones_before)
        }
    }

    #[inline]
    fn nav_bv_get_rank(&self, v: usize, i: usize) -> (bool, usize) {
        let j = self.bv_index(v);
        let s = self.bv_bounds.get(j) as usize;
        let ones_before = self.bv_ones.get(j) as usize;
        let (bit, r1) = self.bvs.get_rank1(s + i);
        if bit {
            (true, r1 - ones_before)
        } else {
            (false, (s + i - r1) - (s - ones_before))
        }
    }

    #[inline]
    fn nav_bv_select(&self, v: usize, bit: bool, k: usize) -> Option<usize> {
        let j = self.bv_index(v);
        let (s, e) = self.bv_bounds.get_pair(j);
        let (s, e) = (s as usize, e as usize);
        let ones_before = self.bv_ones.get(j) as usize;
        let before = if bit { ones_before } else { s - ones_before };
        let p = self.bvs.select(bit, before + k)?;
        (p < e).then(|| p - s)
    }

    #[inline]
    fn nav_key(&self, v: usize) -> usize {
        v
    }

    // Batched queries: the software-pipelined group descents of
    // [`crate::batch`] replace the scalar-loop defaults.

    fn nav_access_batch(&self, positions: &[usize]) -> Vec<BitString> {
        crate::batch::access_batch(self, positions)
    }

    fn nav_rank_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<usize> {
        crate::batch::rank_batch(self, queries)
    }

    fn nav_select_batch(&self, queries: &[(BitStr<'_>, usize)]) -> Vec<Option<usize>> {
        crate::batch::select_batch(self, queries)
    }

    fn nav_count_prefix_batch(&self, prefixes: &[BitStr<'_>]) -> Vec<usize> {
        crate::batch::count_prefix_batch(self, prefixes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SeqIndex, SequenceOps};

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    /// The paper's Figure 2 sequence.
    fn figure2_seq() -> Vec<BitString> {
        ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
            .iter()
            .map(|s| bs(s))
            .collect()
    }

    #[test]
    fn figure2_structure() {
        let wt = WaveletTrie::build(&figure2_seq()).unwrap();
        assert_eq!(wt.len(), 7);
        assert_eq!(wt.distinct_len(), 4);
        assert_eq!(wt.n_nodes(), 7);
        // Root: α = "0", β = 0010101 (Figure 2).
        let root = wt.nav_root().unwrap();
        let mut label = BitString::new();
        wt.nav_label_append(root, &mut label);
        assert_eq!(label.to_string(), "0");
        let beta: String = (0..wt.nav_bv_len(root))
            .map(|i| if wt.nav_bv_get(root, i) { '1' } else { '0' })
            .collect();
        assert_eq!(beta, "0010101");
        // Left child: α = ε, β = 0111.
        let l = wt.nav_child(root, false);
        assert_eq!(wt.nav_label_len(l), 0);
        let beta: String = (0..wt.nav_bv_len(l))
            .map(|i| if wt.nav_bv_get(l, i) { '1' } else { '0' })
            .collect();
        assert_eq!(beta, "0111");
        // Left-left leaf: α = "1" (appendix of 0001 after "0"+"0").
        let ll = wt.nav_child(l, false);
        assert!(wt.nav_is_leaf(ll));
        let mut lab = BitString::new();
        wt.nav_label_append(ll, &mut lab);
        assert_eq!(lab.to_string(), "1");
        // Left-right internal: α = ε, β = 100.
        let lr = wt.nav_child(l, true);
        let beta: String = (0..wt.nav_bv_len(lr))
            .map(|i| if wt.nav_bv_get(lr, i) { '1' } else { '0' })
            .collect();
        assert_eq!(beta, "100");
        // Right child of root: leaf α = "00" (0100 after "0"+"1").
        let r = wt.nav_child(root, true);
        assert!(wt.nav_is_leaf(r));
        let mut lab = BitString::new();
        wt.nav_label_append(r, &mut lab);
        assert_eq!(lab.to_string(), "00");
    }

    #[test]
    fn figure2_queries() {
        let seq = figure2_seq();
        let wt = WaveletTrie::build(&seq).unwrap();
        for (i, s) in seq.iter().enumerate() {
            assert_eq!(&wt.access(i), s, "access({i})");
        }
        // rank/select against naive
        for s in &seq {
            let occs: Vec<usize> = (0..seq.len()).filter(|&i| &seq[i] == s).collect();
            for pos in 0..=seq.len() {
                let naive = occs.iter().filter(|&&p| p < pos).count();
                assert_eq!(wt.rank(s.as_bitstr(), pos), naive);
            }
            for (k, &p) in occs.iter().enumerate() {
                assert_eq!(wt.select(s.as_bitstr(), k), Some(p));
            }
            assert_eq!(wt.select(s.as_bitstr(), occs.len()), None);
        }
        // prefix ops: strings starting with "00" are at positions 0,1,3,5
        let p = bs("00");
        assert_eq!(wt.count_prefix(p.as_bitstr()), 4);
        assert_eq!(wt.rank_prefix(p.as_bitstr(), 4), 3);
        assert_eq!(wt.select_prefix(p.as_bitstr(), 0), Some(0));
        assert_eq!(wt.select_prefix(p.as_bitstr(), 2), Some(3));
        assert_eq!(wt.select_prefix(p.as_bitstr(), 3), Some(5));
        assert_eq!(wt.select_prefix(p.as_bitstr(), 4), None);
        // absent strings
        assert_eq!(wt.rank(bs("0000").as_bitstr(), 7), 0);
        assert_eq!(wt.select(bs("1111").as_bitstr(), 0), None);
        assert_eq!(wt.count_prefix(bs("11").as_bitstr()), 0);
        // a prefix that is also a full string boundary: "0100" exactly
        assert_eq!(wt.count_prefix(bs("0100").as_bitstr()), 3);
    }

    #[test]
    fn single_distinct_string() {
        let seq: Vec<BitString> = (0..5).map(|_| bs("1010")).collect();
        let wt = WaveletTrie::build(&seq).unwrap();
        assert_eq!(wt.len(), 5);
        assert_eq!(wt.distinct_len(), 1);
        assert_eq!(wt.access(3).to_string(), "1010");
        assert_eq!(wt.rank(bs("1010").as_bitstr(), 4), 4);
        assert_eq!(wt.select(bs("1010").as_bitstr(), 4), Some(4));
        assert_eq!(wt.select(bs("1010").as_bitstr(), 5), None);
        assert_eq!(wt.count_prefix(bs("10").as_bitstr()), 5);
        assert_eq!(wt.height(), 0);
    }

    #[test]
    fn empty_sequence() {
        let wt = WaveletTrie::build::<BitString>(&[]).unwrap();
        assert!(wt.is_empty());
        assert_eq!(wt.rank(bs("01").as_bitstr(), 0), 0);
        assert_eq!(wt.select(bs("01").as_bitstr(), 0), None);
        assert_eq!(wt.distinct_len(), 0);
    }

    #[test]
    fn prefix_violation_rejected() {
        let seq = vec![bs("01"), bs("010")];
        assert!(WaveletTrie::build(&seq).is_err());
        let seq = vec![bs("010"), bs("01")];
        assert!(WaveletTrie::build(&seq).is_err());
        let seq = vec![bs(""), bs("1")];
        assert!(WaveletTrie::build(&seq).is_err());
    }

    #[test]
    fn avg_height_bounds_lemma_3_5() {
        // H0(S) <= h̃ <= (1/n)Σ|s_i|
        let seq = figure2_seq();
        let wt = WaveletTrie::build(&seq).unwrap();
        let h = wt.avg_height();
        let n = seq.len() as f64;
        let h0 = wt.nh0_bits() / n;
        let avg_len: f64 = seq.iter().map(|s| s.len() as f64).sum::<f64>() / n;
        assert!(h0 <= h + 1e-9, "H0={h0} h̃={h}");
        assert!(h <= avg_len + 1e-9, "h̃={h} avg|s|={avg_len}");
    }

    #[test]
    fn space_breakdown_sane() {
        let seq: Vec<BitString> = (0..200u32)
            .map(|i| {
                // 16-bit fixed width: prefix-free
                BitString::from_bits((0..16).rev().map(move |k| ((i * 37 % 50) >> k) & 1 != 0))
            })
            .collect();
        let wt = WaveletTrie::build(&seq).unwrap();
        let sp = wt.space_breakdown();
        assert_eq!(sp.n, 200);
        assert!(sp.distinct <= 50);
        assert!(sp.total_bits > 0);
        assert!(sp.lb_bits > 0.0);
        // at least one bit per string per level
        assert!(sp.hn_bits >= sp.n);
        // total should be in the same ballpark as LB (within a small factor)
        assert!(
            (sp.total_bits as f64) < 8.0 * sp.lb_bits + 4096.0,
            "total {} vs LB {}",
            sp.total_bits,
            sp.lb_bits
        );
    }

    #[test]
    fn range_ops_on_figure2() {
        let wt = WaveletTrie::build(&figure2_seq()).unwrap();
        // distinct in [2, 6): 0100, 00100, 0100, 00100 -> {0100:2, 00100:2}
        let d = wt.distinct_in_range(2, 6);
        let strs: Vec<(String, usize)> = d.iter().map(|(s, c)| (s.to_string(), *c)).collect();
        assert_eq!(strs, vec![("00100".into(), 2), ("0100".into(), 2)]);
        // majority of [2, 7): 0100 x3 of 5
        let m = wt.range_majority(2, 7).unwrap();
        assert_eq!(m.0.to_string(), "0100");
        assert_eq!(m.1, 3);
        // no majority in [0, 4)
        assert!(wt.range_majority(0, 4).is_none());
        // frequent with threshold 3 over all: 0100 (3x)
        let f = wt.range_frequent(0, 7, 3);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].0.to_string(), "0100");
        // sequential iteration reproduces the sequence
        let all: Vec<String> = wt.iter_seq().map(|s| s.to_string()).collect();
        assert_eq!(
            all,
            vec!["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
        );
        let mid: Vec<String> = wt.iter_range(2, 5).map(|s| s.to_string()).collect();
        assert_eq!(mid, vec!["0100", "00100", "0100"]);
        // prefix-restricted iteration: "00"-strings are 0001,0011,00100,00100
        let pm: Vec<String> = wt
            .iter_prefix_matches(bs("00").as_bitstr(), 1, 4)
            .map(|s| s.to_string())
            .collect();
        assert_eq!(pm, vec!["0011", "00100", "00100"]);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut s = 0xBEE5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Large enough that the parallel path engages even past the spine
        // cutoff (build_views is called directly to bypass the size gate).
        let seq: Vec<BitString> = (0..6000)
            .map(|_| {
                let v = next() % 300;
                BitString::from_bits((0..14).rev().map(move |k| (v >> k) & 1 != 0))
            })
            .collect();
        let views: Vec<_> = seq.iter().map(|s| s.as_bitstr()).collect();
        let serial = WaveletTrie::build_views(&views, 1).unwrap();
        for threads in [2usize, 4] {
            let par = WaveletTrie::from_views_with_threads(views.iter().copied(), threads).unwrap();
            let a = serial.space_breakdown();
            let b = par.space_breakdown();
            assert_eq!(a.total_bits, b.total_bits, "threads={threads}");
            assert_eq!(a.hn_bits, b.hn_bits);
            assert!((a.nh0_bits - b.nh0_bits).abs() < 1e-6);
            for i in (0..seq.len()).step_by(97) {
                assert_eq!(par.access(i), serial.access(i), "access({i})");
            }
            for probe in (0..300u64).step_by(13) {
                let s = BitString::from_bits((0..14).rev().map(move |k| (probe >> k) & 1 != 0));
                assert_eq!(
                    par.count(s.as_bitstr()),
                    serial.count(s.as_bitstr()),
                    "count({probe})"
                );
            }
        }
        // A prefix-free violation must surface from a worker task too.
        let mut bad: Vec<BitString> = views.iter().map(|v| v.to_owned_str()).collect();
        bad.push(bad[0].as_bitstr().prefix(5).to_owned_str());
        assert!(WaveletTrie::build_with_threads(&bad, 4).is_err());
    }

    #[test]
    fn larger_random_sequence_against_naive() {
        let mut s = 0xFEED_BEEFu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Fixed-width 12-bit strings over a small alphabet: prefix-free.
        let vals: Vec<u32> = (0..3000).map(|_| (next() % 40) as u32).collect();
        let seq: Vec<BitString> = vals
            .iter()
            .map(|&v| BitString::from_bits((0..12).rev().map(move |k| (v >> k) & 1 != 0)))
            .collect();
        let wt = WaveletTrie::build(&seq).unwrap();
        assert_eq!(wt.distinct_len(), {
            let mut u: Vec<u32> = vals.clone();
            u.sort_unstable();
            u.dedup();
            u.len()
        });
        for probe in 0..40u32 {
            let s = BitString::from_bits((0..12).rev().map(move |k| (probe >> k) & 1 != 0));
            let occs: Vec<usize> = (0..vals.len()).filter(|&i| vals[i] == probe).collect();
            for &pos in &[0usize, 1, 100, 1500, 3000] {
                let naive = occs.iter().filter(|&&p| p < pos).count();
                assert_eq!(wt.rank(s.as_bitstr(), pos), naive, "rank({probe},{pos})");
            }
            for k in (0..occs.len()).step_by(7) {
                assert_eq!(wt.select(s.as_bitstr(), k), Some(occs[k]));
            }
        }
        for &i in &[0usize, 1, 999, 2999] {
            assert_eq!(wt.access(i), seq[i], "access({i})");
        }
    }
}
