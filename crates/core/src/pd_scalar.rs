//! Specialized scalar descent for the path-decomposed static trie.
//!
//! The generic [`TrieNav`](crate::nav::TrieNav) descent resolves every
//! binary node from scratch — three Elias–Fano probes (≈ five directory
//! selects) per step — which costs more than the wavelet trie's own node
//! resolution and wastes the locality the decomposition exists to create.
//! This module walks the decomposition the way the layout wants to be
//! walked, with a different specialization per query family:
//!
//! * **Structural descents carry no delimiter state.** Navigation needs
//!   only the label arena, the branch-direction bits and the skeleton —
//!   the segment delimiters (`bv_bounds`, `bv_ones`) play no part in
//!   *where* a query goes. `rank`/`select`/`count`/`count_prefix` descend
//!   with a two-cursor walker and record bare `(step, bit)` pairs; the
//!   delimiter pairs are resolved *afterwards* in one batched pass —
//!   prefetch every run start, then read, runs of consecutive steps
//!   costing adjacent cursor advances. The counting queries resolve only
//!   the pairs they return (one step), skipping the pass entirely.
//! * **`access` defers the labels instead.** The position-mapping chain
//!   never consults a label — branching bits live in the concatenated
//!   bitvector, labels are skipped by construction — so the dependent
//!   probe loop runs with delimiter cursors only, recording probe bits
//!   and one `(first, last)` label-id range per visited path (BFS
//!   numbering makes each range contiguous in the arena). The output
//!   string is assembled afterwards from those ranges, off the dependent
//!   chain.
//! * **Heavy steps are cursor advances, light jumps prefetched rounds.**
//!   Consecutive steps of one path occupy consecutive entries in every
//!   per-step directory, so following the centroid path advances
//!   [`EfCursor`]s through words already in cache. The light target of
//!   step `f` is always path `f + 1`, known *before* the branch resolves —
//!   its seats are hinted two levels deep a step ahead, and each jump
//!   window-hints the whole fan of plausible *next* targets (exits are
//!   geometric, and BFS numbering makes the targets a consecutive id
//!   range sharing seat-sample strides).
//!
//! Every function answers bit-identically to the generic algorithms in
//! [`nav`](crate::nav) — the oracle suite (`tests/pd_model.rs`) holds the
//! two paths equal over every shape.

use crate::pd::PathDecompTrie;
use wt_bits::{BitRank, BitSelect, EfCursor};
use wt_trie::{BitStr, BitString};

/// One resolved branching step of a structural descent: the directory
/// state of the β segment plus the branch taken.
#[derive(Clone, Copy)]
struct Step {
    seg_start: u64,
    seg_len: u64,
    ones_before: u64,
    bit: bool,
}

/// Inline capacity of a recorded descent; matches the generic
/// `DescentPath` so the same realistic trie heights stay allocation-free.
const INLINE_STEPS: usize = 40;

/// Small stack of `Copy` records, inline with heap spill.
struct InlineStack<T: Copy> {
    inline: [std::mem::MaybeUninit<T>; INLINE_STEPS],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy> InlineStack<T> {
    #[inline]
    fn new() -> Self {
        InlineStack {
            inline: [std::mem::MaybeUninit::uninit(); INLINE_STEPS],
            len: 0,
            spill: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, s: T) {
        if self.len < INLINE_STEPS {
            self.inline[self.len].write(s);
            self.len += 1;
        } else {
            self.spill.push(s);
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn inline_entry(&self, k: usize) -> T {
        debug_assert!(k < self.len);
        // SAFETY: `len` only grows past a slot after `push` wrote it, and
        // `T` is `Copy` (no drop obligations).
        unsafe { self.inline[k].assume_init() }
    }

    #[inline]
    fn last(&self) -> Option<T> {
        self.spill.last().copied().or(if self.len > 0 {
            Some(self.inline_entry(self.len - 1))
        } else {
            None
        })
    }

    /// First-to-last order.
    fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len)
            .map(|k| self.inline_entry(k))
            .chain(self.spill.iter().copied())
    }

    /// Last-to-first order.
    fn iter_rev(&self) -> impl Iterator<Item = T> + '_ {
        self.spill
            .iter()
            .rev()
            .copied()
            .chain((0..self.len).rev().map(|k| self.inline_entry(k)))
    }
}

/// Root-to-leaf record of resolved branching steps.
type StepStack = InlineStack<Step>;

/// Root-to-leaf record of bare `(global step, branch bit)` pairs — all a
/// structural descent commits to before the batched delimiter resolve.
type RawSteps = InlineStack<(usize, bool)>;

/// Exits from a centroid path are geometric, so hinting this many next
/// candidates per jump covers ≈ 94% of the following jumps.
const JUMP_WINDOW: usize = 4;

/// Structure-only cursor state: the current binary node `(path, step)`
/// with its label bounds resolved, plus the light-jump candidate's degree
/// pair. No segment delimiters — see the module docs.
struct SkelWalker<'a> {
    pd: &'a PathDecompTrie,
    /// Global step of the current node; `f == f_end` at the path's leaf.
    f: usize,
    /// Step bound of the current path (`step_base + k`).
    f_end: usize,
    lab_lo: u64,
    lab_hi: u64,
    lab_cur: EfCursor,
    /// Degree-prefix pair of the *light-jump candidate* (path `f + 1`):
    /// `base = sk_lo`, `k = sk_hi − sk_lo`. BFS numbering makes the
    /// candidate of consecutive steps consecutive skeleton entries, so
    /// this rides a cursor too — `(base, k)` sits in registers at every
    /// step and the jump's directory seats prefetch a full step early.
    sk_lo: u64,
    sk_hi: u64,
    sk_cur: EfCursor,
}

impl<'a> SkelWalker<'a> {
    /// Seats the walker on the root path; `None` when the trie is empty.
    fn root(pd: &'a PathDecompTrie) -> Option<Self> {
        if pd.is_empty() {
            return None;
        }
        let (base, k) = pd.skeleton.node(0);
        debug_assert_eq!(base, 0);
        // Placeholder cursor: fully re-seated below before any use.
        let dummy = pd.label_bounds.cursor(0);
        let mut w = SkelWalker {
            pd,
            f: 0,
            f_end: k,
            lab_lo: 0,
            lab_hi: 0,
            lab_cur: dummy,
            sk_lo: 0,
            sk_hi: 0,
            sk_cur: dummy,
        };
        w.seat_labels(0);
        if k > 0 {
            w.seat_skeleton(1);
            w.prefetch_light();
        }
        Some(w)
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.f == self.f_end
    }

    #[inline]
    fn label(&self) -> BitStr<'a> {
        BitStr::new(
            &self.pd.labels,
            self.lab_lo as usize,
            (self.lab_hi - self.lab_lo) as usize,
        )
    }

    /// Seats the label cursor on entry `li` and resolves its `(lo, hi)`
    /// bounds pair.
    #[inline]
    fn seat_labels(&mut self, li: usize) {
        self.lab_cur = self.pd.label_bounds.cursor(li);
        self.lab_lo = self.pd.label_bounds.cursor_value(self.lab_cur);
        self.pd.label_bounds.advance(&mut self.lab_cur);
        self.lab_hi = self.pd.label_bounds.cursor_value(self.lab_cur);
    }

    /// Seats the skeleton cursor on path `c` — the light-jump candidate —
    /// and resolves its `(step_base, step_end)` degree-prefix pair.
    #[inline]
    fn seat_skeleton(&mut self, c: usize) {
        let deg = self.pd.skeleton.degrees();
        self.sk_cur = deg.cursor(c);
        self.sk_lo = deg.cursor_value(self.sk_cur);
        deg.advance(&mut self.sk_cur);
        self.sk_hi = deg.cursor_value(self.sk_cur);
    }

    /// Hints the lines a light jump from the current step would touch —
    /// exact addresses, issued a step ahead of the seats.
    #[inline]
    fn prefetch_light(&self) {
        let c = self.f + 1;
        let base = self.sk_lo as usize;
        self.pd.label_bounds.prefetch_cursor_deep(base + c);
        self.pd.labels.prefetch(self.lab_hi as usize);
        if self.sk_hi > self.sk_lo {
            self.pd.skeleton.degrees().prefetch_cursor_deep(base + 1);
            self.pd.dirs.prefetch(base);
        }
    }

    /// After a light jump: window-hints every plausible *next* jump target
    /// (consecutive ids, shared seat strides) so back-to-back jumps — which
    /// have no intervening work to hide latency behind — still land warm.
    #[inline]
    fn prefetch_jump_window(&self) {
        let deg = self.pd.skeleton.degrees();
        let cand_hi = (self.f + 1 + JUMP_WINDOW).min(deg.len() - 1);
        deg.prefetch_cursor_deep(cand_hi);
        let lab_hi = (self.sk_lo as usize + cand_hi).min(self.pd.label_bounds.len() - 1);
        self.pd.label_bounds.prefetch_cursor_deep(lab_hi);
    }

    /// Moves to the child selected by `bit`: two cursor advances when the
    /// branch follows the centroid path, one overlapped directory round
    /// when it jumps to a child path.
    #[inline]
    fn descend(&mut self, bit: bool) {
        debug_assert!(!self.is_leaf());
        if bit == self.pd.dirs.get(self.f) {
            self.f += 1;
            self.lab_lo = self.lab_hi;
            self.pd.label_bounds.advance(&mut self.lab_cur);
            self.lab_hi = self.pd.label_bounds.cursor_value(self.lab_cur);
            if self.f < self.f_end {
                let deg = self.pd.skeleton.degrees();
                self.sk_lo = self.sk_hi;
                deg.advance(&mut self.sk_cur);
                self.sk_hi = deg.cursor_value(self.sk_cur);
            }
        } else {
            let c = self.f + 1;
            let base = self.sk_lo as usize;
            let k = (self.sk_hi - self.sk_lo) as usize;
            self.seat_labels(base + c);
            self.pd.labels.prefetch(self.lab_lo as usize);
            self.f = base;
            self.f_end = base + k;
            if k > 0 {
                self.seat_skeleton(base + 1);
                self.prefetch_jump_window();
            }
        }
        if self.f < self.f_end {
            self.prefetch_light();
        }
    }
}

/// Reads the `(lo, hi)` delimiter pair of entry `f` from both segment
/// directories through their seat samples.
#[inline]
fn delimiter_pairs(pd: &PathDecompTrie, f: usize) -> (u64, u64, u64, u64) {
    let (slo, shi) = pd.bv_bounds.get_pair_seated(f);
    let (olo, ohi) = pd.bv_ones.get_pair_seated(f);
    (slo, shi, olo, ohi)
}

/// Resolves a structural descent's delimiter pairs in one batched pass:
/// every run start is hinted two levels deep first, then runs of
/// consecutive steps (the common case — stretches of one path) resolve as
/// adjacent cursor advances over warm words.
///
/// `frac` (a position-mapping query's `pos / len`) additionally hints each
/// resolved step's estimated probe superblock *as the step resolves* — the
/// remaining resolve compute then hides the concat directory's fetch
/// latency before [`map_down`] issues its dependent chain.
fn resolve_steps(pd: &PathDecompTrie, raw: &RawSteps, frac: Option<f64>) -> StepStack {
    let mut prev = usize::MAX - 1;
    for (f, _) in raw.iter() {
        if f != prev + 1 {
            pd.bv_bounds.prefetch_cursor_deep(f);
            pd.bv_ones.prefetch_cursor_deep(f);
        }
        prev = f;
    }
    let mut steps = StepStack::new();
    let Some((f0, _)) = raw.iter().next() else {
        return steps;
    };
    let mut bc = pd.bv_bounds.cursor(f0);
    let mut slo = pd.bv_bounds.cursor_value(bc);
    let mut oc = pd.bv_ones.cursor(f0);
    let mut olo = pd.bv_ones.cursor_value(oc);
    let mut prev = f0;
    for (f, bit) in raw.iter() {
        if f != prev {
            // New run: re-seat both cursors on its first entry.
            bc = pd.bv_bounds.cursor(f);
            slo = pd.bv_bounds.cursor_value(bc);
            oc = pd.bv_ones.cursor(f);
            olo = pd.bv_ones.cursor_value(oc);
        }
        pd.bv_bounds.advance(&mut bc);
        let shi = pd.bv_bounds.cursor_value(bc);
        pd.bv_ones.advance(&mut oc);
        let ohi = pd.bv_ones.cursor_value(oc);
        let st = Step {
            seg_start: slo,
            seg_len: shi - slo,
            ones_before: olo,
            bit,
        };
        if let Some(fr) = frac {
            pd.bvs.prefetch(est_probe(st, fr));
        }
        steps.push(st);
        slo = shi;
        olo = ohi;
        prev = f + 1;
    }
    steps
}

/// Occurrences in the subtree a recorded descent ends in: the branch-side
/// total of the deepest step — the only delimiter pair it resolves.
#[inline]
fn last_side_total(pd: &PathDecompTrie, raw: &RawSteps) -> usize {
    match raw.last() {
        Some((f, bit)) => {
            let (slo, shi, olo, ohi) = delimiter_pairs(pd, f);
            if bit {
                (ohi - olo) as usize
            } else {
                ((shi - slo) - (ohi - olo)) as usize
            }
        }
        None => pd.len(), // root leaf: the whole sequence
    }
}

/// Delimiter-cursor state for the dependent probe chain of `access`: the
/// same shape as [`SkelWalker`] with segment cursors *instead of* label
/// bounds — the position mapping never consults a label.
struct ProbeWalker<'a> {
    pd: &'a PathDecompTrie,
    f: usize,
    f_end: usize,
    seg_lo: u64,
    seg_hi: u64,
    bv_cur: EfCursor,
    on_lo: u64,
    on_hi: u64,
    on_cur: EfCursor,
    sk_lo: u64,
    sk_hi: u64,
    sk_cur: EfCursor,
}

impl<'a> ProbeWalker<'a> {
    fn root(pd: &'a PathDecompTrie) -> Option<Self> {
        if pd.is_empty() {
            return None;
        }
        let (base, k) = pd.skeleton.node(0);
        debug_assert_eq!(base, 0);
        let dummy = pd.bv_bounds.cursor(0);
        let mut w = ProbeWalker {
            pd,
            f: 0,
            f_end: k,
            seg_lo: 0,
            seg_hi: 0,
            bv_cur: dummy,
            on_lo: 0,
            on_hi: 0,
            on_cur: dummy,
            sk_lo: 0,
            sk_hi: 0,
            sk_cur: dummy,
        };
        if k > 0 {
            w.seat_segments(0);
            w.seat_skeleton(1);
            w.prefetch_light();
            w.prefetch_jump_window();
        }
        Some(w)
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.f == self.f_end
    }

    /// Seats the two segment cursors on step `f` (which must exist) and
    /// resolves the `(lo, hi)` delimiter pairs.
    #[inline]
    fn seat_segments(&mut self, f: usize) {
        self.bv_cur = self.pd.bv_bounds.cursor(f);
        self.seg_lo = self.pd.bv_bounds.cursor_value(self.bv_cur);
        self.pd.bv_bounds.advance(&mut self.bv_cur);
        self.seg_hi = self.pd.bv_bounds.cursor_value(self.bv_cur);
        self.on_cur = self.pd.bv_ones.cursor(f);
        self.on_lo = self.pd.bv_ones.cursor_value(self.on_cur);
        self.pd.bv_ones.advance(&mut self.on_cur);
        self.on_hi = self.pd.bv_ones.cursor_value(self.on_cur);
    }

    #[inline]
    fn seat_skeleton(&mut self, c: usize) {
        let deg = self.pd.skeleton.degrees();
        self.sk_cur = deg.cursor(c);
        self.sk_lo = deg.cursor_value(self.sk_cur);
        deg.advance(&mut self.sk_cur);
        self.sk_hi = deg.cursor_value(self.sk_cur);
    }

    #[inline]
    fn prefetch_light(&self) {
        let base = self.sk_lo as usize;
        if self.sk_hi > self.sk_lo {
            self.pd.bv_bounds.prefetch_cursor_deep(base);
            self.pd.bv_ones.prefetch_cursor_deep(base);
            self.pd.skeleton.degrees().prefetch_cursor_deep(base + 1);
            self.pd.dirs.prefetch(base);
        }
    }

    #[inline]
    fn prefetch_jump_window(&self) {
        let deg = self.pd.skeleton.degrees();
        let cand_hi = (self.f + 1 + JUMP_WINDOW).min(deg.len() - 1);
        deg.prefetch_cursor_deep(cand_hi);
        let seg_hi = (self.sk_lo as usize + JUMP_WINDOW).min(self.pd.bv_bounds.len() - 1);
        self.pd.bv_bounds.prefetch_cursor_deep(seg_hi);
        self.pd.bv_ones.prefetch_cursor_deep(seg_hi);
    }

    #[inline]
    fn descend(&mut self, bit: bool) {
        debug_assert!(!self.is_leaf());
        if bit == self.pd.dirs.get(self.f) {
            self.f += 1;
            if self.f < self.f_end {
                self.seg_lo = self.seg_hi;
                self.pd.bv_bounds.advance(&mut self.bv_cur);
                self.seg_hi = self.pd.bv_bounds.cursor_value(self.bv_cur);
                self.on_lo = self.on_hi;
                self.pd.bv_ones.advance(&mut self.on_cur);
                self.on_hi = self.pd.bv_ones.cursor_value(self.on_cur);
                let deg = self.pd.skeleton.degrees();
                self.sk_lo = self.sk_hi;
                deg.advance(&mut self.sk_cur);
                self.sk_hi = deg.cursor_value(self.sk_cur);
            }
        } else {
            let base = self.sk_lo as usize;
            let k = (self.sk_hi - self.sk_lo) as usize;
            self.f = base;
            self.f_end = base + k;
            if k > 0 {
                self.seat_segments(base);
                self.seat_skeleton(base + 1);
                self.prefetch_jump_window();
            }
        }
        if self.f < self.f_end {
            self.prefetch_light();
        }
    }
}

/// `Access(pos)`: the dependent rank chain runs first with delimiter
/// cursors only, recording each probe bit and one contiguous label-id
/// range per visited path; the output string is assembled afterwards from
/// those ranges with the label directory prefetched up front.
pub(crate) fn access(pd: &PathDecompTrie, pos: usize) -> BitString {
    assert!(pos < pd.len(), "Access position out of bounds");
    let mut w = ProbeWalker::root(pd).expect("nonempty");
    // (first, last) label id of each visited path: path `v` entered at
    // step base `S(v)` and left at step `fx` contributes exactly label ids
    // `S(v) + v ..= fx + v`.
    let mut paths: InlineStack<(usize, usize)> = InlineStack::new();
    let mut bits = BitString::new();
    let mut v = 0usize;
    let mut entry = 0usize;
    let mut p = pos as u64;
    while !w.is_leaf() {
        if w.f + 1 < w.f_end {
            // Hint the *heavy* candidate of the next probe: staying on the
            // path fixes the branch bit to `dirs[f]`, so the next position
            // is the mapped `p` under that bit — estimated from the
            // segment's ones density — offset into the adjacent segment.
            let dir = pd.dirs.get(w.f);
            let r1e = p * (w.on_hi - w.on_lo) / (w.seg_hi - w.seg_lo);
            let pe = if dir { r1e } else { p - r1e };
            pd.bvs.prefetch((w.seg_hi + pe) as usize);
        }
        let (bit, r1g) = pd.bvs.get_rank1((w.seg_lo + p) as usize);
        let r1 = r1g as u64 - w.on_lo;
        p = if bit { r1 } else { p - r1 };
        bits.push(bit);
        let f = w.f;
        let light = bit != pd.dirs.get(f);
        w.descend(bit);
        if light {
            paths.push((entry + v, f + v));
            v = f + 1;
            entry = w.f;
        }
        if !w.is_leaf() {
            // The next probe's position is now exact: resolve its block
            // through the (estimate-hinted) directory and pull the precise
            // offset line while this iteration's tail work retires.
            pd.bvs.prefetch_deep((w.seg_lo + p) as usize, 0);
        }
    }
    paths.push((entry + v, w.f_end + v));

    // Assembly: hint every range's directory seat, then walk each range's
    // bounds cursor, copying arena slices interleaved with the recorded
    // probe bits (one after every label until the bits run out).
    for (first, _) in paths.iter() {
        pd.label_bounds.prefetch_cursor_deep(first);
    }
    let mut out = BitString::new();
    let bits = bits.as_bitstr();
    let mut bi = 0usize;
    for (first, last) in paths.iter() {
        let mut cur = pd.label_bounds.cursor(first);
        let mut lo = pd.label_bounds.cursor_value(cur);
        pd.labels.prefetch(lo as usize);
        for _ in first..=last {
            pd.label_bounds.advance(&mut cur);
            let hi = pd.label_bounds.cursor_value(cur);
            out.push_str(BitStr::new(&pd.labels, lo as usize, (hi - lo) as usize));
            if bi < bits.len() {
                out.push(bits.get(bi));
                bi += 1;
            }
            lo = hi;
        }
    }
    out
}

/// Structural descent consuming the *exact* string `s`; `Some(raw steps)`
/// iff `s ∈ Sset`. No delimiter reads — labels, directions and the
/// skeleton only.
fn descend_exact(pd: &PathDecompTrie, s: BitStr<'_>) -> Option<RawSteps> {
    let mut w = SkelWalker::root(pd)?;
    let mut steps = RawSteps::new();
    let mut delta = 0usize;
    loop {
        let rest = s.suffix(delta);
        let l = w.label().lcp(&rest);
        if l < (w.lab_hi - w.lab_lo) as usize {
            return None;
        }
        delta += l;
        if w.is_leaf() {
            return (delta == s.len()).then_some(steps);
        }
        if delta == s.len() {
            // s is a proper prefix of every string below: not an element.
            return None;
        }
        let b = s.get(delta);
        delta += 1;
        steps.push((w.f, b));
        w.descend(b);
    }
}

/// Estimated probe position of a resolved step: per-level splits are
/// proportional on near-uniform data, so the *relative* position
/// `p / seg_len` stays close to its root value all the way down.
#[inline]
fn est_probe(st: Step, frac: f64) -> usize {
    (st.seg_start + ((frac * st.seg_len as f64) as u64).min(st.seg_len - 1)) as usize
}

/// Maps `pos` down the resolved chain. Every segment base is known after
/// the structural descent and [`est_probe`] predicts each step's probe
/// position to within the directory granularity, so the chain prefetches
/// in two overlapped rounds — superblock lines first, then the offset
/// words via the warm directory — before the first dependent rank.
fn map_down(pd: &PathDecompTrie, steps: &StepStack, pos: usize) -> usize {
    // The superblock/class lines were hinted per step by [`resolve_steps`];
    // resolve each estimate's offset pointer through those warm lines,
    // deduped by superblock (16 × 63 bits) — the tail of the chain walks
    // ever-shorter consecutive segments whose estimates share directory
    // lines, and the line-fill buffers are the scarce resource.
    const SB_BITS: usize = 1008;
    let frac = pos as f64 / pd.len() as f64;
    let mut prev = usize::MAX;
    for st in steps.iter() {
        let est = est_probe(st, frac);
        if est / SB_BITS == prev {
            continue;
        }
        prev = est / SB_BITS;
        let spread = ((frac * st.seg_len as f64).sqrt() as usize / 1000).min(2);
        pd.bvs.prefetch_deep(est, spread);
    }
    // Dependent chain. After each step maps `p`, the *next* probe position
    // is exact — resolve its block and pull the precise offset line with a
    // full probe's worth of lead.
    let mut p = pos as u64;
    let mut iter = steps.iter();
    let mut cur = iter.next();
    while let Some(st) = cur {
        let next = iter.next();
        let r1 = pd.bvs.rank1((st.seg_start + p) as usize) as u64 - st.ones_before;
        p = if st.bit { r1 } else { p - r1 };
        if let Some(nx) = next {
            pd.bvs.prefetch_deep((nx.seg_start + p) as usize, 0);
        }
        cur = next;
    }
    p as usize
}

/// `Rank(s, pos)`.
pub(crate) fn rank(pd: &PathDecompTrie, s: BitStr<'_>, pos: usize) -> usize {
    assert!(pos <= pd.len(), "Rank position out of bounds");
    match descend_exact(pd, s) {
        None => 0,
        Some(raw) => {
            let frac = pos as f64 / pd.len() as f64;
            map_down(pd, &resolve_steps(pd, &raw, Some(frac)), pos)
        }
    }
}

/// `Count(s)` — resolves a single delimiter pair.
pub(crate) fn count(pd: &PathDecompTrie, s: BitStr<'_>) -> usize {
    match descend_exact(pd, s) {
        None => 0,
        Some(raw) => last_side_total(pd, &raw),
    }
}

/// `CountPrefix(p)` — resolves at most one delimiter pair: the subtree
/// size of the node the prefix lands in (possibly mid-label).
pub(crate) fn count_prefix(pd: &PathDecompTrie, p: BitStr<'_>) -> usize {
    let Some(mut w) = SkelWalker::root(pd) else {
        return 0;
    };
    let mut steps = RawSteps::new();
    let mut delta = 0usize;
    loop {
        let rest = p.suffix(delta);
        let l = w.label().lcp(&rest);
        delta += l;
        if delta == p.len() {
            // p exhausted (possibly mid-label): subtree of this node.
            return if w.is_leaf() {
                last_side_total(pd, &steps)
            } else {
                let (slo, shi) = pd.bv_bounds.get_pair_seated(w.f);
                (shi - slo) as usize
            };
        }
        if l < (w.lab_hi - w.lab_lo) as usize || w.is_leaf() {
            return 0;
        }
        let b = p.get(delta);
        delta += 1;
        steps.push((w.f, b));
        w.descend(b);
    }
}

/// `Select(s, idx)`: structural descent down, prefetched select chain up.
pub(crate) fn select(pd: &PathDecompTrie, s: BitStr<'_>, idx: usize) -> Option<usize> {
    let raw = descend_exact(pd, s)?;
    if idx >= last_side_total(pd, &raw) {
        return None;
    }
    if raw.is_empty() {
        return Some(idx);
    }
    let steps = resolve_steps(pd, &raw, None);
    for st in steps.iter() {
        pd.bvs.prefetch(st.seg_start as usize);
    }
    let mut i = idx as u64;
    for st in steps.iter_rev() {
        let before = if st.bit {
            st.ones_before
        } else {
            st.seg_start - st.ones_before
        };
        let p = pd.bvs.select(st.bit, (before + i) as usize)? as u64;
        if p >= st.seg_start + st.seg_len {
            return None;
        }
        i = p - st.seg_start;
    }
    Some(i as usize)
}
