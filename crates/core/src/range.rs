//! Range query algorithms (§5 of the paper), implemented once over
//! [`TrieNav`] so every Wavelet Trie variant gets them.
//!
//! * sequential access over `[l, r)` with per-node iterators (one Rank per
//!   traversed node, then O(1) advances);
//! * distinct values in range, with counts;
//! * range majority element;
//! * the "at least t occurrences" heuristic;
//! * prefix-restricted variants of all of the above (stop-early traversal).

use crate::nav::{descend_prefix, Descent, TrieNav};
use std::collections::HashMap;
use wt_trie::{BitStr, BitString};

/// Enumerates the distinct strings of `S[l, r)` with their occurrence
/// counts, in lexicographic order. O(Σ_{s∈distinct} (|s| + h_s · C_op)).
pub(crate) fn distinct_in_range<T: TrieNav>(
    t: &T,
    l: usize,
    r: usize,
    f: &mut impl FnMut(&BitString, usize),
) {
    assert!(l <= r && r <= t.nav_len(), "range out of bounds");
    if l == r {
        return;
    }
    let root = t.nav_root().expect("nonempty");
    let mut prefix = BitString::new();
    distinct_rec(t, root, l, r, &mut prefix, f);
}

fn distinct_rec<'a, T: TrieNav>(
    t: &'a T,
    v: T::Node<'a>,
    l: usize,
    r: usize,
    prefix: &mut BitString,
    f: &mut impl FnMut(&BitString, usize),
) {
    let save = prefix.len();
    t.nav_label_append(v, prefix);
    if t.nav_is_leaf(v) {
        f(prefix, r - l);
        prefix.truncate(save);
        return;
    }
    let zl = t.nav_bv_rank(v, false, l);
    let zr = t.nav_bv_rank(v, false, r);
    if zr > zl {
        prefix.push(false);
        distinct_rec(t, t.nav_child(v, false), zl, zr, prefix, f);
        prefix.truncate(prefix.len() - 1);
    }
    let (ol, or) = (l - zl, r - zr);
    if or > ol {
        prefix.push(true);
        distinct_rec(t, t.nav_child(v, true), ol, or, prefix, f);
        prefix.truncate(prefix.len() - 1);
    }
    prefix.truncate(save);
}

/// Distinct strings with prefix `p` in `S[l, r)` (stop-early variant).
pub(crate) fn distinct_in_range_with_prefix<T: TrieNav>(
    t: &T,
    p: BitStr<'_>,
    l: usize,
    r: usize,
    f: &mut impl FnMut(&BitString, usize),
) {
    assert!(l <= r && r <= t.nav_len(), "range out of bounds");
    if l == r {
        return;
    }
    match descend_prefix(t, p) {
        Descent::Absent => {}
        Descent::Found { node, path } => {
            let (mut l, mut r) = (l, r);
            let mut prefix = BitString::new();
            for (v, b) in path.iter() {
                t.nav_label_append(v, &mut prefix);
                prefix.push(b);
                l = t.nav_bv_rank(v, b, l);
                r = t.nav_bv_rank(v, b, r);
            }
            if l < r {
                distinct_rec(t, node, l, r, &mut prefix, f);
            }
        }
    }
}

/// Enumerates the distinct `depth`-bit *prefixes* of the strings in
/// `S[l, r)` with occurrence counts (§5: "We can stop early in the
/// traversal, hence enumerating the distinct prefixes … for example in an
/// URL access log we can find efficiently the distinct hostnames in a given
/// time range"). Strings shorter than `depth` are reported whole.
pub(crate) fn distinct_prefixes_in_range<T: TrieNav>(
    t: &T,
    l: usize,
    r: usize,
    depth: usize,
    f: &mut impl FnMut(&BitString, usize),
) {
    assert!(l <= r && r <= t.nav_len(), "range out of bounds");
    if l == r {
        return;
    }
    let root = t.nav_root().expect("nonempty");
    let mut prefix = BitString::new();
    prefix_rec(t, root, l, r, depth, &mut prefix, f);
}

fn prefix_rec<'a, T: TrieNav>(
    t: &'a T,
    v: T::Node<'a>,
    l: usize,
    r: usize,
    depth: usize,
    prefix: &mut BitString,
    f: &mut impl FnMut(&BitString, usize),
) {
    let save = prefix.len();
    t.nav_label_append(v, prefix);
    if prefix.len() >= depth {
        // Stop early: everything below shares this prefix.
        let keep = prefix.len();
        prefix.truncate(depth);
        f(prefix, r - l);
        // restore for caller bookkeeping (truncate below handles it)
        let _ = keep;
        prefix.truncate(save);
        return;
    }
    if t.nav_is_leaf(v) {
        f(prefix, r - l); // whole string shorter than depth
        prefix.truncate(save);
        return;
    }
    let zl = t.nav_bv_rank(v, false, l);
    let zr = t.nav_bv_rank(v, false, r);
    if zr > zl {
        prefix.push(false);
        prefix_rec(t, t.nav_child(v, false), zl, zr, depth, prefix, f);
        prefix.truncate(prefix.len() - 1);
    }
    let (ol, or) = (l - zl, r - zr);
    if or > ol {
        prefix.push(true);
        prefix_rec(t, t.nav_child(v, true), ol, or, depth, prefix, f);
        prefix.truncate(prefix.len() - 1);
    }
    prefix.truncate(save);
}

/// The majority element of `S[l, r)` (> (r−l)/2 occurrences), if any.
/// O(h · C_op); on success O(h_s · C_op).
pub(crate) fn range_majority<T: TrieNav>(t: &T, l: usize, r: usize) -> Option<(BitString, usize)> {
    assert!(l <= r && r <= t.nav_len(), "range out of bounds");
    if l == r {
        return None;
    }
    let total = r - l;
    let mut v = t.nav_root().expect("nonempty");
    let (mut l, mut r) = (l, r);
    let mut out = BitString::new();
    loop {
        t.nav_label_append(v, &mut out);
        if t.nav_is_leaf(v) {
            let count = r - l;
            return (2 * count > total).then_some((out, count));
        }
        let zl = t.nav_bv_rank(v, false, l);
        let zr = t.nav_bv_rank(v, false, r);
        let zeros = zr - zl;
        let ones = (r - l) - zeros;
        if 2 * zeros > total {
            out.push(false);
            v = t.nav_child(v, false);
            l = zl;
            r = zr;
        } else if 2 * ones > total {
            out.push(true);
            v = t.nav_child(v, true);
            l -= zl;
            r -= zr;
        } else {
            return None;
        }
    }
}

/// The §5 heuristic: every string occurring at least `min_count` times in
/// `S[l, r)`, found by pruning branches with fewer than `min_count` bits.
pub(crate) fn range_frequent<T: TrieNav>(
    t: &T,
    l: usize,
    r: usize,
    min_count: usize,
    f: &mut impl FnMut(&BitString, usize),
) {
    assert!(l <= r && r <= t.nav_len(), "range out of bounds");
    let min_count = min_count.max(1);
    if r - l < min_count {
        return;
    }
    let root = t.nav_root().expect("nonempty");
    let mut prefix = BitString::new();
    frequent_rec(t, root, l, r, min_count, &mut prefix, f);
}

fn frequent_rec<'a, T: TrieNav>(
    t: &'a T,
    v: T::Node<'a>,
    l: usize,
    r: usize,
    min_count: usize,
    prefix: &mut BitString,
    f: &mut impl FnMut(&BitString, usize),
) {
    let save = prefix.len();
    t.nav_label_append(v, prefix);
    if t.nav_is_leaf(v) {
        debug_assert!(r - l >= min_count);
        f(prefix, r - l);
        prefix.truncate(save);
        return;
    }
    let zl = t.nav_bv_rank(v, false, l);
    let zr = t.nav_bv_rank(v, false, r);
    if zr - zl >= min_count {
        prefix.push(false);
        frequent_rec(t, t.nav_child(v, false), zl, zr, min_count, prefix, f);
        prefix.truncate(prefix.len() - 1);
    }
    if (r - zr) - (l - zl) >= min_count {
        prefix.push(true);
        frequent_rec(
            t,
            t.nav_child(v, true),
            l - zl,
            r - zr,
            min_count,
            prefix,
            f,
        );
        prefix.truncate(prefix.len() - 1);
    }
    prefix.truncate(save);
}

/// Sequential iterator over `S[l, r)` (§5 "Sequential access"): one Rank per
/// node on first traversal, then cursor advances; extracting the `i`-th
/// string costs O(|s_i|) plus amortized shared-path work.
pub struct RangeIter<'a, T: TrieNav> {
    t: &'a T,
    /// node key → cursor position inside that node's bitvector.
    cursors: HashMap<usize, usize>,
    /// node to start each walk from (root, or `n_p` for prefix iteration).
    start: Option<T::Node<'a>>,
    /// string prefix accumulated above `start` (prefix iteration).
    head: BitString,
    remaining: usize,
}

impl<'a, T: TrieNav> RangeIter<'a, T> {
    /// Iterates `S[l, r)`.
    pub(crate) fn new(t: &'a T, l: usize, r: usize) -> Self {
        assert!(l <= r && r <= t.nav_len(), "range out of bounds");
        let start = t.nav_root();
        let mut cursors = HashMap::new();
        if let Some(v) = start {
            cursors.insert(t.nav_key(v), l);
        }
        RangeIter {
            t,
            cursors,
            start,
            head: BitString::new(),
            remaining: r - l,
        }
    }

    /// Iterates the strings with prefix `p` among the `idx`-th to `end`-th
    /// (exclusive) matches; built by the prefix-restricted entry points.
    pub(crate) fn new_with_prefix(t: &'a T, p: BitStr<'_>, l: usize, r: usize) -> Self {
        assert!(l <= r, "range out of bounds");
        match descend_prefix(t, p) {
            Descent::Absent => RangeIter {
                t,
                cursors: HashMap::new(),
                start: None,
                head: BitString::new(),
                remaining: 0,
            },
            Descent::Found { node, path } => {
                let mut head = BitString::new();
                for (v, b) in path.iter() {
                    t.nav_label_append(v, &mut head);
                    head.push(b);
                }
                let total = crate::nav::count_prefix(t, p);
                let l = l.min(total);
                let r = r.min(total);
                let mut cursors = HashMap::new();
                cursors.insert(t.nav_key(node), l);
                RangeIter {
                    t,
                    cursors,
                    start: Some(node),
                    head,
                    remaining: r - l,
                }
            }
        }
    }
}

impl<'a, T: TrieNav> Iterator for RangeIter<'a, T> {
    type Item = BitString;

    fn next(&mut self) -> Option<BitString> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let t = self.t;
        let mut v = self.start?;
        let mut out = self.head.clone();
        loop {
            t.nav_label_append(v, &mut out);
            if t.nav_is_leaf(v) {
                return Some(out);
            }
            let key = t.nav_key(v);
            let c = *self.cursors.get(&key).expect("cursor seeded");
            let b = t.nav_bv_get(v, c);
            self.cursors.insert(key, c + 1);
            out.push(b);
            let child = t.nav_child(v, b);
            let ck = t.nav_key(child);
            self.cursors
                .entry(ck)
                .or_insert_with(|| t.nav_bv_rank(v, b, c));
            v = child;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, T: TrieNav> ExactSizeIterator for RangeIter<'a, T> {}
