//! Dynamic Wavelet Tries (§4 of the paper) — the main contribution: the
//! first compressed dynamic sequence with a **dynamic alphabet**.
//!
//! One generic engine [`DynWaveletTrie<B>`] implements the §4 algorithms —
//! insertion with node splitting and `Init` (Figure 3), deletion with node
//! merging — over any bitvector satisfying [`WtBitVec`]. It is instantiated
//! twice:
//!
//! * [`AppendWaveletTrie`] (Theorem 4.3): bitvectors are
//!   [`OffsetBitVec`] (append-only §4.1 bitvector + implicit-prefix `Init`);
//!   `Append` and queries in O(|s| + h_s).
//! * [`DynamicWaveletTrie`] (Theorem 4.4): bitvectors are
//!   [`DynamicBitVec`] (§4.2 RLE+γ); `Insert`/`Delete` and queries in
//!   O(|s| + h_s log n).

use crate::nav::TrieNav;
use wt_bits::{BitAccess, BitRank, BitSelect, DynamicBitVec, OffsetBitVec, RawBitVec, SpaceUsage};
use wt_trie::{BitStr, BitString, PrefixFreeViolation};

/// Bitvector interface required by the dynamic Wavelet Trie nodes.
pub trait WtBitVec: Default + SpaceUsage {
    /// `Init(b, n)`: constant bitvector of `n` copies of `bit`
    /// (Remark 4.2: must not cost Ω(n)).
    fn wt_filled(bit: bool, n: usize) -> Self;
    /// Length.
    fn wt_len(&self) -> usize;
    /// Bit at `i`.
    fn wt_get(&self, i: usize) -> bool;
    /// Occurrences of `bit` in `[0, i)`.
    fn wt_rank(&self, bit: bool, i: usize) -> usize;
    /// Position of the `k`-th `bit`.
    fn wt_select(&self, bit: bool, k: usize) -> Option<usize>;
    /// Inserts `bit` at `i`. Append-only implementations support only
    /// `i == len` (which is the only position the append-only Wavelet Trie
    /// ever produces).
    fn wt_insert(&mut self, i: usize, bit: bool);
    /// Appends all bits to a raw bitvector — the bulk-export half of the
    /// structural freeze. Implementations should copy run- or word-wise
    /// where the representation allows it.
    fn wt_append_into(&self, out: &mut RawBitVec);
    /// Builds from a bit iterator — the bulk-import half of `thaw`.
    /// The default pushes one bit at a time; backends with a faster bulk
    /// constructor should override.
    fn wt_from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::default();
        for b in iter {
            let n = v.wt_len();
            v.wt_insert(n, b);
        }
        v
    }
}

/// Deletion support (fully dynamic bitvectors only).
pub trait WtBitVecRemove: WtBitVec {
    /// Removes and returns the bit at `i`.
    fn wt_remove(&mut self, i: usize) -> bool;
}

impl WtBitVec for OffsetBitVec {
    fn wt_filled(bit: bool, n: usize) -> Self {
        OffsetBitVec::filled(bit, n)
    }
    fn wt_len(&self) -> usize {
        self.len()
    }
    fn wt_get(&self, i: usize) -> bool {
        self.get(i)
    }
    fn wt_rank(&self, bit: bool, i: usize) -> usize {
        self.rank(bit, i)
    }
    fn wt_select(&self, bit: bool, k: usize) -> Option<usize> {
        self.select(bit, k)
    }
    fn wt_insert(&mut self, i: usize, bit: bool) {
        assert_eq!(i, self.len(), "append-only bitvector: insert at end only");
        self.push(bit);
    }
    fn wt_append_into(&self, out: &mut RawBitVec) {
        self.append_into(out);
    }
}

impl WtBitVec for DynamicBitVec {
    fn wt_filled(bit: bool, n: usize) -> Self {
        DynamicBitVec::filled(bit, n)
    }
    fn wt_len(&self) -> usize {
        self.len()
    }
    fn wt_get(&self, i: usize) -> bool {
        self.get(i)
    }
    fn wt_rank(&self, bit: bool, i: usize) -> usize {
        self.rank(bit, i)
    }
    fn wt_select(&self, bit: bool, k: usize) -> Option<usize> {
        self.select(bit, k)
    }
    fn wt_insert(&mut self, i: usize, bit: bool) {
        self.insert(i, bit);
    }
    fn wt_append_into(&self, out: &mut RawBitVec) {
        for b in self.iter() {
            out.push(b);
        }
    }
    fn wt_from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        DynamicBitVec::from_bits(iter)
    }
}

impl WtBitVecRemove for DynamicBitVec {
    fn wt_remove(&mut self, i: usize) -> bool {
        self.remove(i)
    }
}

/// Internal-node payload, boxed so leaves stay pointer-sized: with
/// `|Sset| = Θ(n)` alphabets (common for URL logs) the per-leaf footprint
/// is a large part of the `PT = O(|Sset|·w)` term of Theorems 4.3/4.4.
#[derive(Clone, Debug)]
pub(crate) struct Internal<B> {
    pub(crate) label: BitString,
    pub(crate) bv: B,
    pub(crate) children: [Node<B>; 2],
}

#[derive(Clone, Debug)]
pub(crate) enum Node<B> {
    Internal(Box<Internal<B>>),
    Leaf(BitString),
}

impl<B> Node<B> {
    pub(crate) fn label(&self) -> &BitString {
        match self {
            Node::Internal(i) => &i.label,
            Node::Leaf(label) => label,
        }
    }

    fn label_mut(&mut self) -> &mut BitString {
        match self {
            Node::Internal(i) => &mut i.label,
            Node::Leaf(label) => label,
        }
    }
}

/// The dynamic Wavelet Trie engine (§4), generic over the node bitvector.
#[derive(Clone, Debug, Default)]
pub struct DynWaveletTrie<B: WtBitVec> {
    pub(crate) root: Option<Node<B>>,
    pub(crate) len: usize,
}

impl<B: WtBitVec> DynWaveletTrie<B> {
    /// An empty sequence.
    pub fn new() -> Self {
        DynWaveletTrie { root: None, len: 0 }
    }

    /// Sequence length n.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only pre-check so a failed insert leaves the trie untouched.
    fn check_insertable(&self, s: BitStr<'_>) -> Result<(), PrefixFreeViolation> {
        let mut node = match &self.root {
            None => return Ok(()),
            Some(r) => r,
        };
        let mut delta = 0usize;
        loop {
            let label = node.label().as_bitstr();
            let rest = s.suffix(delta);
            let l = rest.lcp(&label);
            if l < label.len() {
                return if delta + l == s.len() {
                    // s ends strictly inside the label: proper prefix.
                    Err(PrefixFreeViolation)
                } else {
                    Ok(()) // genuine mismatch: a split will happen
                };
            }
            delta += l;
            match node {
                Node::Leaf(_) => {
                    return if delta == s.len() {
                        Ok(()) // exact duplicate: fine
                    } else {
                        Err(PrefixFreeViolation) // stored string is prefix of s
                    };
                }
                Node::Internal(int) => {
                    if delta == s.len() {
                        return Err(PrefixFreeViolation); // s prefix of stored
                    }
                    let b = s.get(delta);
                    delta += 1;
                    node = &int.children[b as usize];
                }
            }
        }
    }

    /// `Insert(s, pos)` (§4): inserts `s` immediately before position `pos`.
    ///
    /// # Errors
    /// [`PrefixFreeViolation`] if `s` would break prefix-freeness; the
    /// structure is unchanged in that case.
    ///
    /// # Panics
    /// If `pos > len()`, or (append-only backend) if `pos != len()`.
    pub fn insert(&mut self, s: BitStr<'_>, pos: usize) -> Result<(), PrefixFreeViolation> {
        assert!(pos <= self.len, "insert position out of bounds");
        self.check_insertable(s)?;
        let root = match self.root.as_mut() {
            None => {
                self.root = Some(Node::Leaf(s.to_owned_str()));
                self.len = 1;
                return Ok(());
            }
            Some(r) => r,
        };
        let mut node: &mut Node<B> = root;
        let mut delta = 0usize;
        let mut p = pos;
        // Number of strings in the current node's subsequence (pre-insert).
        let mut m = self.len;
        loop {
            let label = node.label().as_bitstr();
            let rest = s.suffix(delta);
            let l = rest.lcp(&label);
            if l < label.len() {
                // Split (Figure 3): mismatch strictly inside the label.
                let new_bit = s.get(delta + l);
                let old_bit = label.get(l);
                debug_assert_ne!(new_bit, old_bit);
                let common: BitString = label.prefix(l).to_owned_str();
                let old_rest: BitString = label.suffix(l + 1).to_owned_str();
                let new_leaf = Node::Leaf(s.suffix(delta + l + 1).to_owned_str());
                // New internal node: constant bitvector Init(old_bit, m),
                // then the new string's bit at the mapped position.
                let mut bv = B::wt_filled(old_bit, m);
                bv.wt_insert(p, new_bit);
                let mut old = std::mem::replace(node, Node::Leaf(BitString::new()));
                *old.label_mut() = old_rest;
                let children = if new_bit {
                    [old, new_leaf]
                } else {
                    [new_leaf, old]
                };
                *node = Node::Internal(Box::new(Internal {
                    label: common,
                    bv,
                    children,
                }));
                break;
            }
            delta += l;
            match node {
                Node::Leaf(_) => {
                    debug_assert_eq!(delta, s.len(), "checked by check_insertable");
                    break; // exact duplicate: all path bitvectors updated
                }
                Node::Internal(int) => {
                    debug_assert!(delta < s.len(), "checked by check_insertable");
                    let b = s.get(delta);
                    delta += 1;
                    let child_count = int.bv.wt_rank(b, int.bv.wt_len());
                    int.bv.wt_insert(p, b);
                    p = int.bv.wt_rank(b, p);
                    m = child_count;
                    node = &mut int.children[b as usize];
                }
            }
        }
        self.len += 1;
        Ok(())
    }

    /// `Append(s)`: inserts at the end (the Theorem 4.3 operation).
    pub fn append(&mut self, s: BitStr<'_>) -> Result<(), PrefixFreeViolation> {
        self.insert(s, self.len)
    }

    /// Heap space of the whole structure in bits, split into the Patricia
    /// part (labels + pointers, the `PT`/`O(|Sset|w)` term) and the
    /// bitvector part (the `nH0` term).
    pub fn space_parts(&self) -> (usize, usize) {
        fn rec<B: WtBitVec>(n: &Node<B>) -> (usize, usize) {
            let slot = std::mem::size_of::<Node<B>>() * 8;
            match n {
                Node::Leaf(label) => (slot + label.size_bits(), 0),
                Node::Internal(int) => {
                    let heap = (std::mem::size_of::<Internal<B>>()
                        - std::mem::size_of::<B>()
                        - 2 * std::mem::size_of::<Node<B>>()
                        - std::mem::size_of::<BitString>())
                        * 8;
                    let (p0, b0) = rec(&int.children[0]);
                    let (p1, b1) = rec(&int.children[1]);
                    (
                        slot + heap + int.label.size_bits() + p0 + p1,
                        int.bv.size_bits() + b0 + b1,
                    )
                }
            }
        }
        self.root.as_ref().map_or((0, 0), |r| rec(r))
    }
}

impl<B: WtBitVec + SpaceUsage> SpaceUsage for DynWaveletTrie<B> {
    fn size_bits(&self) -> usize {
        let (pt, bv) = self.space_parts();
        pt + bv + 2 * 64
    }
}

impl<B: WtBitVecRemove> DynWaveletTrie<B> {
    /// `Delete(pos)` (§4): removes and returns the string at `pos`.
    ///
    /// # Panics
    /// If `pos >= len()`.
    pub fn delete(&mut self, pos: usize) -> BitString {
        assert!(pos < self.len, "delete position out of bounds");
        let mut out = BitString::new();
        let root = self.root.as_mut().expect("nonempty");
        Self::delete_rec(root, pos, &mut out);
        self.len -= 1;
        if self.len == 0 {
            self.root = None;
        }
        out
    }

    fn delete_rec(node: &mut Node<B>, pos: usize, out: &mut BitString) {
        out.push_str(node.label().as_bitstr());
        let (b, mapped) = match node {
            Node::Leaf(_) => return,
            Node::Internal(int) => {
                let b = int.bv.wt_get(pos);
                let mapped = int.bv.wt_rank(b, pos);
                int.bv.wt_remove(pos);
                (b, mapped)
            }
        };
        out.push(b);
        let merge_needed = match node {
            Node::Internal(int) => {
                Self::delete_rec(&mut int.children[b as usize], mapped, out);
                // Last occurrence of the leaf's string gone? (its side of the
                // bitvector became constant-empty)
                matches!(&int.children[b as usize], Node::Leaf(_))
                    && int.bv.wt_rank(b, int.bv.wt_len()) == 0
            }
            Node::Leaf(_) => unreachable!(),
        };
        if merge_needed {
            // Remove the dead leaf and splice the sibling into this node,
            // folding the branch bit into the label (Appendix B deletion).
            let old = std::mem::replace(node, Node::Leaf(BitString::new()));
            let int = match old {
                Node::Internal(int) => *int,
                Node::Leaf(_) => unreachable!(),
            };
            let Internal {
                label, children, ..
            } = int;
            let [c0, c1] = children;
            let mut sibling = if b { c0 } else { c1 };
            let mut merged = label;
            merged.push(!b);
            merged.push_str(sibling.label().as_bitstr());
            *sibling.label_mut() = merged;
            *node = sibling;
        }
    }
}

/// Opaque handle to a node of a dynamic Wavelet Trie (used by the generic
/// navigation/query layer).
pub struct NodeRef<'a, B: WtBitVec>(&'a Node<B>);

impl<B: WtBitVec> Clone for NodeRef<'_, B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<B: WtBitVec> Copy for NodeRef<'_, B> {}

impl<B: WtBitVec> TrieNav for DynWaveletTrie<B> {
    type Node<'a>
        = NodeRef<'a, B>
    where
        B: 'a;

    #[inline]
    fn nav_root(&self) -> Option<NodeRef<'_, B>> {
        self.root.as_ref().map(NodeRef)
    }

    #[inline]
    fn nav_len(&self) -> usize {
        self.len
    }

    #[inline]
    fn nav_is_leaf<'a>(&'a self, v: NodeRef<'a, B>) -> bool {
        matches!(v.0, Node::Leaf(_))
    }

    #[inline]
    fn nav_child<'a>(&'a self, v: NodeRef<'a, B>, bit: bool) -> NodeRef<'a, B> {
        match v.0 {
            Node::Internal(int) => NodeRef(&int.children[bit as usize]),
            Node::Leaf(_) => panic!("nav_child on a leaf"),
        }
    }

    #[inline]
    fn nav_label_len<'a>(&'a self, v: NodeRef<'a, B>) -> usize {
        v.0.label().len()
    }

    #[inline]
    fn nav_label_bit<'a>(&'a self, v: NodeRef<'a, B>, i: usize) -> bool {
        v.0.label().get(i)
    }

    #[inline]
    fn nav_label_lcp<'a>(&'a self, v: NodeRef<'a, B>, s: BitStr<'_>) -> usize {
        v.0.label().as_bitstr().lcp(&s)
    }

    #[inline]
    fn nav_label_append<'a>(&'a self, v: NodeRef<'a, B>, out: &mut BitString) {
        out.push_str(v.0.label().as_bitstr());
    }

    #[inline]
    fn nav_bv_len<'a>(&'a self, v: NodeRef<'a, B>) -> usize {
        match v.0 {
            Node::Internal(int) => int.bv.wt_len(),
            Node::Leaf(_) => panic!("nav_bv_len on a leaf"),
        }
    }

    #[inline]
    fn nav_bv_get<'a>(&'a self, v: NodeRef<'a, B>, i: usize) -> bool {
        match v.0 {
            Node::Internal(int) => int.bv.wt_get(i),
            Node::Leaf(_) => panic!("nav_bv_get on a leaf"),
        }
    }

    #[inline]
    fn nav_bv_rank<'a>(&'a self, v: NodeRef<'a, B>, bit: bool, i: usize) -> usize {
        match v.0 {
            Node::Internal(int) => int.bv.wt_rank(bit, i),
            Node::Leaf(_) => panic!("nav_bv_rank on a leaf"),
        }
    }

    #[inline]
    fn nav_bv_select<'a>(&'a self, v: NodeRef<'a, B>, bit: bool, k: usize) -> Option<usize> {
        match v.0 {
            Node::Internal(int) => int.bv.wt_select(bit, k),
            Node::Leaf(_) => panic!("nav_bv_select on a leaf"),
        }
    }

    #[inline]
    fn nav_key<'a>(&'a self, v: NodeRef<'a, B>) -> usize {
        v.0 as *const Node<B> as usize
    }
}

/// The append-only Wavelet Trie of Theorem 4.3: `Append` and all queries in
/// O(|s| + h_s); space `LB + PT + o(h̃n)` bits.
pub type AppendWaveletTrie = DynWaveletTrie<OffsetBitVec>;

/// The fully dynamic Wavelet Trie of Theorem 4.4: `Insert`, `Delete` and all
/// queries in O(|s| + h_s log n); space `LB + PT + O(nH0)` bits.
pub type DynamicWaveletTrie = DynWaveletTrie<DynamicBitVec>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SeqIndex, SequenceOps};

    fn bs(s: &str) -> BitString {
        BitString::parse(s)
    }

    fn figure2_strs() -> Vec<&'static str> {
        vec!["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
    }

    /// Naive mirror of the sequence for equivalence checking.
    fn check_equiv<B: WtBitVec>(wt: &DynWaveletTrie<B>, model: &[BitString]) {
        assert_eq!(wt.len(), model.len());
        for (i, s) in model.iter().enumerate() {
            assert_eq!(&wt.access(i), s, "access({i})");
        }
        let mut distinct: Vec<&BitString> = model.iter().collect();
        distinct.sort();
        distinct.dedup();
        for s in distinct {
            let occs: Vec<usize> = (0..model.len()).filter(|&i| &model[i] == s).collect();
            for pos in 0..=model.len() {
                let naive = occs.iter().filter(|&&p| p < pos).count();
                assert_eq!(wt.rank(s.as_bitstr(), pos), naive, "rank({s},{pos})");
            }
            for (k, &p) in occs.iter().enumerate() {
                assert_eq!(wt.select(s.as_bitstr(), k), Some(p), "select({s},{k})");
            }
            assert_eq!(wt.select(s.as_bitstr(), occs.len()), None);
        }
        let iterated: Vec<BitString> = wt.iter_seq().collect();
        assert_eq!(&iterated, model, "sequential iteration");
    }

    #[test]
    fn append_only_figure2() {
        let mut wt = AppendWaveletTrie::new();
        let mut model = Vec::new();
        for s in figure2_strs() {
            wt.append(bs(s).as_bitstr()).unwrap();
            model.push(bs(s));
            check_equiv(&wt, &model);
        }
        assert_eq!(wt.distinct_len(), 4);
        // prefix ops
        assert_eq!(wt.count_prefix(bs("00").as_bitstr()), 4);
        assert_eq!(wt.select_prefix(bs("00").as_bitstr(), 3), Some(5));
    }

    #[test]
    fn figure3_split_shape() {
        // Insert a brand-new string and verify the split produced an
        // internal node with a constant bitvector + the new bit.
        let mut wt = DynamicWaveletTrie::new();
        for s in ["0001", "0001", "0011"] {
            wt.append(bs(s).as_bitstr()).unwrap();
        }
        // root: label "00", bv = 001 (children "1" leaf… wait: strings 0001,0011
        // LCP = "00", branch bits: 0,0,1.
        {
            let root = wt.nav_root().unwrap();
            let mut lab = BitString::new();
            wt.nav_label_append(root, &mut lab);
            assert_eq!(lab.to_string(), "00");
            assert_eq!(wt.nav_bv_len(root), 3);
        }
        // New string "0100" splits the root label "00" at offset 1.
        wt.insert(bs("0100").as_bitstr(), 1).unwrap();
        let root = wt.nav_root().unwrap();
        let mut lab = BitString::new();
        wt.nav_label_append(root, &mut lab);
        assert_eq!(lab.to_string(), "0");
        // Root bitvector: old strings get 0 (their next bit is '0'), the new
        // string got 1 at position 1: 0100 -> β = 0,1,0,0
        let beta: String = (0..4)
            .map(|i| if wt.nav_bv_get(root, i) { '1' } else { '0' })
            .collect();
        assert_eq!(beta, "0100");
        // Child 0 is the old node with label shortened to ε... its label was
        // "00": common="0", branch bit "0" consumed, rest = "" -> ε.
        let c0 = wt.nav_child(root, false);
        assert_eq!(wt.nav_label_len(c0), 0);
        // Child 1 is the new leaf with label "00" (0100 minus "0"+"1").
        let c1 = wt.nav_child(root, true);
        assert!(wt.nav_is_leaf(c1));
        let mut lab = BitString::new();
        wt.nav_label_append(c1, &mut lab);
        assert_eq!(lab.to_string(), "00");
        // And the old subtree's bitvector is unchanged under child 0.
        assert_eq!(wt.nav_bv_len(c0), 3);
    }

    #[test]
    fn dynamic_insert_at_positions() {
        let mut wt = DynamicWaveletTrie::new();
        let mut model: Vec<BitString> = Vec::new();
        let seq = ["0001", "0011", "0100", "00100"];
        // interleave inserts at front, middle, back
        for (i, s) in seq.iter().cycle().take(40).enumerate() {
            let pos = match i % 3 {
                0 => 0,
                1 => model.len() / 2,
                _ => model.len(),
            };
            wt.insert(bs(s).as_bitstr(), pos).unwrap();
            model.insert(pos, bs(s));
        }
        check_equiv(&wt, &model);
    }

    #[test]
    fn dynamic_delete_including_last_occurrence() {
        let mut wt = DynamicWaveletTrie::new();
        let mut model: Vec<BitString> = Vec::new();
        for s in figure2_strs() {
            wt.append(bs(s).as_bitstr()).unwrap();
            model.push(bs(s));
        }
        // Delete the single occurrence of 0011 (pos 1): trie must shrink.
        let before_distinct = wt.distinct_len();
        let removed = wt.delete(1);
        assert_eq!(removed.to_string(), "0011");
        model.remove(1);
        assert_eq!(wt.distinct_len(), before_distinct - 1);
        check_equiv(&wt, &model);
        // Delete one of several occurrences: alphabet unchanged.
        let removed = wt.delete(1); // "0100"
        assert_eq!(removed.to_string(), "0100");
        model.remove(1);
        assert_eq!(wt.distinct_len(), before_distinct - 1);
        check_equiv(&wt, &model);
        // Drain everything.
        while !model.is_empty() {
            let removed = wt.delete(0);
            let expect = model.remove(0);
            assert_eq!(removed, expect);
            check_equiv(&wt, &model);
        }
        assert!(wt.is_empty());
        // And we can start over.
        wt.append(bs("11").as_bitstr()).unwrap();
        assert_eq!(wt.access(0).to_string(), "11");
    }

    #[test]
    fn prefix_free_violations_leave_structure_intact() {
        let mut wt = DynamicWaveletTrie::new();
        wt.append(bs("0100").as_bitstr()).unwrap();
        wt.append(bs("0001").as_bitstr()).unwrap();
        let snapshot: Vec<BitString> = wt.iter_seq().collect();
        assert!(wt.insert(bs("01").as_bitstr(), 0).is_err());
        assert!(wt.insert(bs("01001").as_bitstr(), 2).is_err());
        assert!(wt.insert(bs("").as_bitstr(), 1).is_err());
        assert_eq!(wt.len(), 2);
        let after: Vec<BitString> = wt.iter_seq().collect();
        assert_eq!(snapshot, after, "failed inserts must not mutate");
    }

    #[test]
    fn pseudorandom_ops_against_model() {
        let mut s = 0x00DD_BA11_5EED_u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut wt = DynamicWaveletTrie::new();
        let mut model: Vec<BitString> = Vec::new();
        // 10-bit fixed-width values over a 25-symbol alphabet.
        let encode = |v: u64| BitString::from_bits((0..10).rev().map(move |k| (v >> k) & 1 != 0));
        for step in 0..600 {
            let r = next() % 10;
            if model.is_empty() || r < 6 {
                let v = next() % 25;
                let pos = (next() % (model.len() as u64 + 1)) as usize;
                wt.insert(encode(v).as_bitstr(), pos).unwrap();
                model.insert(pos, encode(v));
            } else {
                let pos = (next() % model.len() as u64) as usize;
                let got = wt.delete(pos);
                let want = model.remove(pos);
                assert_eq!(got, want, "delete({pos}) at step {step}");
            }
            if step % 100 == 99 {
                check_equiv(&wt, &model);
            }
        }
        check_equiv(&wt, &model);
    }

    #[test]
    fn append_only_space_uses_offsets() {
        // A node created by a late split over a long history must be O(1)
        // space: the implicit prefix does the Init.
        let mut wt = AppendWaveletTrie::new();
        for _ in 0..10_000 {
            wt.append(bs("0000000001").as_bitstr()).unwrap();
        }
        let (pt_before, bv_before) = wt.space_parts();
        wt.append(bs("0000000010").as_bitstr()).unwrap();
        let (pt_after, bv_after) = wt.space_parts();
        // The split added one internal node + leaf (O(w) each: two Node
        // structs of a few hundred bytes) and an O(1) offset bitvector,
        // not a 10k-bit payload.
        assert!(
            pt_after - pt_before < 16 * 1024,
            "PT grew by {}",
            pt_after - pt_before
        );
        assert!(
            bv_after - bv_before < 16 * 1024,
            "BV grew by {}",
            bv_after - bv_before
        );
        assert_eq!(wt.count(bs("0000000010").as_bitstr()), 1);
        assert_eq!(wt.count(bs("0000000001").as_bitstr()), 10_000);
    }

    #[test]
    fn range_ops_work_on_dynamic() {
        let mut wt = DynamicWaveletTrie::new();
        for s in figure2_strs() {
            wt.append(bs(s).as_bitstr()).unwrap();
        }
        let d = wt.distinct_in_range(2, 6);
        let strs: Vec<(String, usize)> = d.iter().map(|(s, c)| (s.to_string(), *c)).collect();
        assert_eq!(strs, vec![("00100".into(), 2), ("0100".into(), 2)]);
        assert_eq!(wt.range_majority(2, 7).unwrap().0.to_string(), "0100");
        let pm: Vec<String> = wt
            .iter_prefix_matches(bs("00").as_bitstr(), 0, 4)
            .map(|s| s.to_string())
            .collect();
        assert_eq!(pm, vec!["0001", "0011", "00100", "00100"]);
        let d = wt.distinct_in_range_with_prefix(bs("00").as_bitstr(), 0, 7);
        let strs: Vec<(String, usize)> = d.iter().map(|(s, c)| (s.to_string(), *c)).collect();
        assert_eq!(
            strs,
            vec![("0001".into(), 1), ("00100".into(), 2), ("0011".into(), 1)]
        );
    }
}
