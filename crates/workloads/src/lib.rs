//! # wt-workloads — deterministic synthetic workloads
//!
//! The paper has no datasets (its evaluation is analytical), so the
//! experiments run on seeded generators modelling the distributional
//! features §1 motivates: repeated strings with shared prefixes (URL/query
//! logs), skewed frequencies (Zipf), time-ordered positions, and integer
//! sequences whose working alphabet is tiny inside a huge universe (§6).
//! Every generator is a pure function of its seed.

pub mod ints;
pub mod urls;
pub mod words;
pub mod zipf;

pub use ints::{clustered_u64, power_comb, small_alphabet_u64};
pub use urls::{url_log, UrlLogConfig};
pub use words::word_text;
pub use zipf::Zipf;

// Re-exported so downstream load generators can drive the samplers above
// without taking their own dependency on the vendored `rand` shim.
pub use rand::RngExt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-standard seeded RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            url_log(50, UrlLogConfig::default(), 7),
            url_log(50, UrlLogConfig::default(), 7)
        );
        assert_eq!(word_text(50, 100, 9), word_text(50, 100, 9));
        assert_eq!(clustered_u64(50, 4, 10, 3), clustered_u64(50, 4, 10, 3));
        assert_ne!(
            url_log(50, UrlLogConfig::default(), 7),
            url_log(50, UrlLogConfig::default(), 8)
        );
    }
}
