//! Zipf-distributed sampling over a finite support, via an explicit CDF
//! table (exact, seed-stable, O(log n) per sample). Query-log and word
//! frequencies are classically Zipfian — the "power-law distributions" the
//! §5 heuristic targets.

use rand::RngExt;

/// A Zipf(θ) distribution over ranks `0..n` (rank 0 most frequent).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution: `P(rank k) ∝ 1/(k+1)^theta`.
    ///
    /// # Panics
    /// If `n == 0` or `theta` is not finite/positive.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "support must be nonempty");
        assert!(theta.is_finite() && theta > 0.0, "theta must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: RngExt>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn skewed_towards_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // rank 0 should take roughly 1/H(1000) ≈ 13% of the mass
        assert!(counts[0] > 80_000 / 10 && counts[0] < 20_000);
    }

    #[test]
    fn all_ranks_reachable_for_small_n() {
        let z = Zipf::new(5, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
