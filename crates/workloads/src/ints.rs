//! Integer workloads for the §6 experiments: working alphabets that are
//! tiny inside a `u64` universe, clustered values, and the adversarial
//! power-of-two comb that drives an unhashed trie to depth `log u`.

use rand::seq::IndexedRandom;
use rand::RngExt;

/// `n` values drawn uniformly from a working alphabet of `sigma` values
/// scattered uniformly in the full `universe_bits`-bit universe.
pub fn small_alphabet_u64(n: usize, sigma: usize, universe_bits: u32, seed: u64) -> Vec<u64> {
    assert!((1..=64).contains(&universe_bits));
    let mut rng = crate::rng(seed);
    let mask = if universe_bits == 64 {
        u64::MAX
    } else {
        (1u64 << universe_bits) - 1
    };
    let alphabet: Vec<u64> = (0..sigma).map(|_| rng.random::<u64>() & mask).collect();
    (0..n)
        .map(|_| *alphabet.choose(&mut rng).expect("nonempty"))
        .collect()
}

/// `n` values from `clusters` clusters of consecutive integers, each of
/// width `spread` — e.g. timestamps or auto-increment keys.
pub fn clustered_u64(n: usize, clusters: usize, spread: u64, seed: u64) -> Vec<u64> {
    let mut rng = crate::rng(seed);
    let bases: Vec<u64> = (0..clusters)
        .map(|_| rng.random::<u64>() >> 8) // keep additions overflow-free
        .collect();
    (0..n)
        .map(|_| {
            let base = *bases.choose(&mut rng).expect("nonempty");
            base + rng.random_range(0..spread.max(1))
        })
        .collect()
}

/// The power-of-two comb `{2^j : j < k}` — the unhashed trie becomes a
/// chain of height ~k (up to `log u`) with only `k` distinct values.
pub fn power_comb(k: u32) -> Vec<u64> {
    assert!(k <= 64);
    (0..k).map(|j| 1u64 << j).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_alphabet_respects_sigma() {
        let v = small_alphabet_u64(10_000, 37, 64, 3);
        let distinct: std::collections::HashSet<u64> = v.iter().copied().collect();
        assert!(distinct.len() <= 37);
        assert!(distinct.len() >= 30, "most symbols should appear");
    }

    #[test]
    fn clusters_are_tight() {
        let v = clustered_u64(1000, 3, 100, 4);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // values should form at most 3 runs of width <= 100
        let mut runs = 1;
        for w in sorted.windows(2) {
            if w[1] - w[0] > 100 {
                runs += 1;
            }
        }
        assert!(runs <= 3, "expected <=3 clusters, got {runs}");
    }

    #[test]
    fn comb_shape() {
        let v = power_comb(8);
        assert_eq!(v, vec![1, 2, 4, 8, 16, 32, 64, 128]);
    }
}
