//! Synthetic URL access-log generator — the paper's flagship motivation
//! (§1: "The accessed URLs, paths … are chronologically stored as a
//! sequence of strings, and a common prefix denotes a common domain or a
//! common folder for the given time frame").
//!
//! Hosts are drawn Zipf-skewed; path depth is geometric; path segments come
//! from a small per-depth vocabulary, so the log has heavy string reuse and
//! long shared prefixes — exactly the regime where `h̃n ≪ Σ|s_i|`.

use crate::zipf::Zipf;
use rand::RngExt;
use rand_distr::{Distribution, Geometric};

/// Shape parameters for [`url_log`].
#[derive(Clone, Copy, Debug)]
pub struct UrlLogConfig {
    /// Number of distinct hosts.
    pub hosts: usize,
    /// Zipf skew over hosts.
    pub theta: f64,
    /// Success probability of the geometric path-depth distribution
    /// (larger ⇒ shallower paths).
    pub depth_p: f64,
    /// Vocabulary of path segments per depth level.
    pub segment_vocab: usize,
}

impl Default for UrlLogConfig {
    fn default() -> Self {
        UrlLogConfig {
            hosts: 100,
            theta: 1.0,
            depth_p: 0.45,
            segment_vocab: 12,
        }
    }
}

/// Generates `n` log entries like `http://host42.example/a3/b7/c1`.
pub fn url_log(n: usize, cfg: UrlLogConfig, seed: u64) -> Vec<String> {
    let mut rng = crate::rng(seed);
    let host_dist = Zipf::new(cfg.hosts, cfg.theta);
    let depth_dist = Geometric::new(cfg.depth_p).expect("valid p");
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let host = host_dist.sample(&mut rng);
        let depth = (depth_dist.sample(&mut rng) as usize).min(6);
        let mut url = format!("http://host{host:03}.example");
        for d in 0..depth {
            let seg = rng.random_range(0..cfg.segment_vocab);
            url.push('/');
            url.push((b'a' + (d as u8 % 26)) as char);
            url.push_str(&seg.to_string());
        }
        if depth == 0 {
            url.push('/');
        }
        out.push(url);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_has_reuse_and_shared_prefixes() {
        let log = url_log(5000, UrlLogConfig::default(), 42);
        assert_eq!(log.len(), 5000);
        let distinct: std::collections::HashSet<&String> = log.iter().collect();
        assert!(
            distinct.len() < log.len() / 2,
            "heavy reuse expected: {} distinct of {}",
            distinct.len(),
            log.len()
        );
        // top host should dominate
        let top = log
            .iter()
            .filter(|u| u.starts_with("http://host000.example"))
            .count();
        assert!(top > log.len() / 20, "Zipf head too light: {top}");
        assert!(log.iter().all(|u| u.starts_with("http://host")));
    }
}
