//! Synthetic word-text generator — the "textual document search" motivation
//! of §1 (a text as the sequence of its words). Word frequencies follow a
//! Zipf law over a fixed vocabulary; word lengths grow slowly with rank so
//! frequent words are short (as in natural language).

use crate::zipf::Zipf;

/// Generates `n` words over a `vocab`-word Zipf(1.0) vocabulary.
pub fn word_text(n: usize, vocab: usize, seed: u64) -> Vec<String> {
    let mut rng = crate::rng(seed);
    let dist = Zipf::new(vocab.max(1), 1.0);
    // Deterministic vocabulary: base-26 spelling of the rank, with length
    // growing logarithmically (short words are frequent).
    let spell = |rank: usize| -> String {
        let len = 2 + (usize::BITS - (rank + 1).leading_zeros()) as usize / 2;
        let mut w = String::with_capacity(len);
        let mut v = rank;
        for _ in 0..len {
            w.push((b'a' + (v % 26) as u8) as char);
            v /= 26;
        }
        w
    };
    (0..n).map(|_| spell(dist.sample(&mut rng))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_follow_zipf() {
        let text = word_text(20_000, 500, 11);
        let mut counts: std::collections::HashMap<&String, usize> = Default::default();
        for w in &text {
            *counts.entry(w).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(freqs[0] > 4 * freqs[freqs.len() / 2]);
        assert!(counts.len() <= 500);
    }

    #[test]
    fn distinct_words_have_distinct_spellings() {
        // spell() must be injective over the vocab range we use
        let text = word_text(50_000, 400, 5);
        let distinct: std::collections::HashSet<&String> = text.iter().collect();
        assert!(
            distinct.len() > 100,
            "vocabulary too collapsed: {}",
            distinct.len()
        );
    }
}
