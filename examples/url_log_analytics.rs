//! §1's flagship use case: an append-only URL access log, compressed and
//! indexed on the fly, answering time-windowed prefix analytics —
//! *"what has been the most accessed domain during winter vacation?"*
//!
//! Run with `cargo run --release --example url_log_analytics`.

use wavelet_trie::AppendLog;
use wt_bits::SpaceUsage;
use wt_workloads::{url_log, UrlLogConfig};

fn main() {
    let n = 50_000;
    let entries = url_log(n, UrlLogConfig::default(), 2024);

    // The log arrives one entry at a time; every append is O(|s| + h_s).
    let mut log = AppendLog::new();
    let t0 = std::time::Instant::now();
    for e in &entries {
        log.append(e);
    }
    let build = t0.elapsed();
    println!(
        "ingested {n} URLs in {:.1} ms ({:.2} µs/append), {} distinct",
        build.as_secs_f64() * 1e3,
        build.as_secs_f64() * 1e6 / n as f64,
        log.distinct_len()
    );
    let raw_bits: usize = entries.iter().map(|e| e.len() * 8).sum();
    println!(
        "space: {} KiB compressed+indexed vs {} KiB raw text",
        log.size_bits() / 8192,
        raw_bits / 8192
    );

    // "Winter vacation" = the middle fifth of the log (positions are time).
    let (from, to) = (2 * n / 5, 3 * n / 5);

    // Accesses per domain in the window: RankPrefix at both ends.
    let host = "http://host000.example";
    let hits = log.range_count_prefix(host, from, to);
    println!("\nwindow [{from}, {to}):");
    println!("  {host}/* was accessed {hits} times");

    // Most accessed URL in the window, if dominant (range majority, §5).
    match log.range_majority(from, to) {
        Some((url, c)) => println!("  majority URL: {url} ({c} hits)"),
        None => println!("  no single URL takes >50% of the window"),
    }

    // Top URLs above a threshold (range top-t heuristic, §5).
    let t = (to - from) / 50;
    let mut top = log.range_frequent(from, to, t);
    top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("  URLs with ≥{t} hits:");
    for (url, c) in top.iter().take(5) {
        println!("    {c:>6}  {url}");
    }

    // Distinct hostnames in the window without touching full URLs
    // (stop-early prefix enumeration, §5: "we can find efficiently the
    // distinct hostnames in a given time range").
    let hostname_len = "http://host000.example".len();
    let mut hosts = log.distinct_byte_prefixes_in_range(from, to, hostname_len);
    hosts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("  {} distinct hostnames in the window; top 3:", hosts.len());
    for (h, c) in hosts.iter().take(3) {
        println!("    {c:>6}  {h}");
    }
    let under = log.distinct_in_range_with_prefix("http://host00", from, to);
    println!(
        "  {} distinct URLs under http://host00* in the window",
        under.len()
    );

    // Replay a slice of the log in order (sequential access, §5).
    print!("  first 3 entries of the window:");
    for e in log.iter_range(from, from + 3) {
        print!(" {e}");
    }
    println!();

    // Point queries.
    let probe = &entries[from + 7];
    println!("\npoint queries on {probe:?}:");
    println!("  total occurrences: {}", log.count(probe));
    println!(
        "  occurrences before position {from}: {}",
        log.rank(probe, from)
    );
    println!("  5th occurrence at position {:?}", log.select(probe, 4));
}
