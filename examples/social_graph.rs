//! §1's social-graph motivation: *"Edges can change over time, so we can
//! report what changed in the adjacency list of a given vertex in a given
//! time frame, allowing us to produce snapshots on the fly."*
//!
//! Each edge event is stored as the string `"<src>→<dst>"` in time order;
//! `RankPrefix` on `"<src>→"` counts a vertex's edge events in any time
//! window, `SelectPrefix` + sequential access reconstruct adjacency
//! snapshots and diffs without scanning the log.
//!
//! Run with `cargo run --release --example social_graph`.

use rand::{RngExt, SeedableRng};
use wavelet_trie::AppendLog;

fn edge(src: u32, dst: u32) -> String {
    // Fixed-width ids keep "u7→" a clean prefix boundary.
    format!("u{src:03}>u{dst:03}")
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2012);
    let mut log = AppendLog::new();

    // 30k timestamped follow events among 200 users, preferential-ish.
    let n = 30_000;
    for _ in 0..n {
        let src = (rng.random_range(0..200u32) * rng.random_range(1..4u32)) % 200;
        let dst = (rng.random_range(0..200u32) * rng.random_range(1..4u32)) % 200;
        log.append(edge(src, dst));
    }
    println!("{n} follow events, {} distinct edges", log.distinct_len());

    let vertex = 42u32;
    let p = format!("u{vertex:03}>");

    // Activity of u042 per era (time windows = position ranges).
    println!("\nout-edge events of u{vertex:03} per era:");
    for (name, l, r) in [
        ("early", 0, n / 3),
        ("middle", n / 3, 2 * n / 3),
        ("late", 2 * n / 3, n),
    ] {
        println!("  {name:>6}: {}", log.range_count_prefix(&p, l, r));
    }

    // Adjacency snapshot "as of" event 10'000: the distinct neighbours among
    // the first 10k events (distinct-values-in-range restricted to prefix).
    let snapshot = log.distinct_in_range_with_prefix(&p, 0, 10_000);
    println!(
        "\nadjacency of u{vertex:03} as of t=10000: {} neighbours",
        snapshot.len()
    );
    for (e, c) in snapshot.iter().take(5) {
        println!("  {e} ({c} events)");
    }

    // What changed during "winter vacation" [12k, 18k)? New neighbours =
    // distinct edges in the window not seen before it.
    let window = log.distinct_in_range_with_prefix(&p, 12_000, 18_000);
    let new: Vec<&(String, usize)> = window
        .iter()
        .filter(|(e, _)| log.rank(e, 12_000) == 0)
        .collect();
    println!(
        "\nin [12000, 18000): {} edge events touched u{vertex:03}'s out-list, {} brand-new neighbours",
        log.range_count_prefix(&p, 12_000, 18_000),
        new.len()
    );

    // Jump straight to the k-th event of this vertex (SelectPrefix) and
    // replay the next few events around it.
    if let Some(pos) = log.select_prefix(&p, 9) {
        println!("\n10th out-event of u{vertex:03} is log position {pos}:");
        for (i, e) in log.iter_range(pos, (pos + 3).min(n)).enumerate() {
            println!("  t={} {e}", pos + i);
        }
    }
}
