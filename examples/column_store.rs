//! A column of a toy column-oriented database backed by the fully dynamic
//! Wavelet Trie (§1: "Column-oriented databases represent relations by
//! storing individually each column as a sequence; if each column is
//! indexed, efficient operations on the relations are possible").
//!
//! The crucial property demonstrated here is the **dynamic alphabet**
//! (issue (a) of §1): rows with never-before-seen values are inserted at
//! arbitrary positions without rebuilding anything.
//!
//! Run with `cargo run --release --example column_store`.

use wavelet_trie::DynamicStrings;
use wt_bits::SpaceUsage;

/// A relation `orders(city, status)` stored column-wise.
struct Orders {
    city: DynamicStrings,
    status: DynamicStrings,
}

impl Orders {
    fn new() -> Self {
        Orders {
            city: DynamicStrings::new(),
            status: DynamicStrings::new(),
        }
    }

    fn insert_row(&mut self, pos: usize, city: &str, status: &str) {
        self.city.insert(city, pos);
        self.status.insert(status, pos);
    }

    fn delete_row(&mut self, pos: usize) -> (String, String) {
        (
            String::from_utf8(self.city.remove(pos)).unwrap(),
            String::from_utf8(self.status.remove(pos)).unwrap(),
        )
    }

    fn len(&self) -> usize {
        self.city.len()
    }

    /// `SELECT count(*) WHERE city = ?` over a row range.
    fn count_city(&self, city: &str, from: usize, to: usize) -> usize {
        self.city.range_count(city, from, to)
    }

    /// `SELECT * WHERE city = ? LIMIT 1 OFFSET k` via Select.
    fn find_kth_in_city(&self, city: &str, k: usize) -> Option<(usize, String)> {
        let row = self.city.select(city, k)?;
        Some((row, self.status.get_string(row)))
    }
}

fn main() {
    let mut orders = Orders::new();

    // Initial load.
    let cities = ["Pisa", "Rome", "Milan", "Pisa", "Turin", "Pisa", "Rome"];
    let statuses = ["open", "paid", "open", "paid", "open", "open", "paid"];
    for (c, s) in cities.iter().zip(statuses) {
        let at = orders.len();
        orders.insert_row(at, c, s);
    }
    println!(
        "loaded {} rows, {} distinct cities",
        orders.len(),
        orders.city.distinct_len()
    );

    // A value the column has never seen arrives mid-table — no rebuild.
    orders.insert_row(3, "Cagliari", "open");
    println!(
        "inserted unseen city 'Cagliari' at row 3 (alphabet grew to {})",
        orders.city.distinct_len()
    );

    // Analytics.
    println!(
        "rows with city=Pisa in [0, {}): {}",
        orders.len(),
        orders.count_city("Pisa", 0, orders.len())
    );
    println!("2nd Pisa order: {:?}", orders.find_kth_in_city("Pisa", 1));
    println!("status of row 3: {}", orders.status.get_string(3));

    // Grouped counts over a range via distinct-values-in-range (§5).
    println!("GROUP BY city over rows [0, {}):", orders.len());
    for (city, c) in orders.city.distinct_in_range(0, orders.len()) {
        println!("  {city:<9} {c}");
    }

    // Deleting the last Cagliari row shrinks the alphabet again.
    let (c, s) = orders.delete_row(3);
    println!(
        "deleted row 3 = ({c}, {s}); distinct cities back to {}",
        orders.city.distinct_len()
    );

    // UPDATE = delete + insert at the same position.
    let (_, _) = orders.delete_row(0);
    orders.insert_row(0, "Pisa", "shipped");
    println!(
        "after UPDATE row 0: status = {}",
        orders.status.get_string(0)
    );

    println!(
        "column space: city = {} bytes, status = {} bytes",
        orders.city.size_bits() / 8,
        orders.status.size_bits() / 8
    );
}
