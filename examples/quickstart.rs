//! Quickstart: the paper's Figure 2 sequence, end to end.
//!
//! Run with `cargo run --example quickstart`.

use wavelet_trie::{BitString, DynamicWaveletTrie, SeqIndex, WaveletTrie};

fn main() {
    // The sequence of Figure 2: 〈0001, 0011, 0100, 00100, 0100, 00100, 0100〉.
    let seq: Vec<BitString> = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]
        .iter()
        .map(|s| BitString::parse(s))
        .collect();

    // --- Static: build once, query forever -------------------------------
    let wt = WaveletTrie::build(&seq).expect("prefix-free set");
    println!(
        "n = {}, |Sset| = {}, height = {}",
        wt.len(),
        wt.distinct_len(),
        wt.height()
    );
    println!("Access(3)  = {}", wt.access(3));
    let s = BitString::parse("0100");
    println!("Rank(0100, 7)   = {}", wt.rank(s.as_bitstr(), 7));
    println!("Select(0100, 2) = {:?}", wt.select(s.as_bitstr(), 2));
    let p = BitString::parse("00");
    println!(
        "RankPrefix(00, 7)    = {}",
        wt.rank_prefix(p.as_bitstr(), 7)
    );
    println!(
        "SelectPrefix(00, 3)  = {:?}",
        wt.select_prefix(p.as_bitstr(), 3)
    );

    // Range analytics (§5).
    println!(
        "distinct in [2,6): {:?}",
        wt.distinct_in_range(2, 6)
            .iter()
            .map(|(s, c)| (s.to_string(), *c))
            .collect::<Vec<_>>()
    );
    println!(
        "majority of [2,7): {:?}",
        wt.range_majority(2, 7).map(|(s, c)| (s.to_string(), c))
    );

    // Space vs. the information-theoretic lower bound (Theorem 3.7).
    let sp = wt.space_breakdown();
    println!(
        "space: {} bits total vs LB = LT + nH0 = {:.1} + {:.1} = {:.1} bits",
        sp.total_bits, sp.lt_bits, sp.nh0_bits, sp.lb_bits
    );

    // --- Dynamic: same sequence built by interleaved inserts --------------
    let mut dyn_wt = DynamicWaveletTrie::new();
    for s in &seq {
        dyn_wt.append(s.as_bitstr()).expect("prefix-free");
    }
    // A brand-new string can arrive at any moment (dynamic alphabet!):
    dyn_wt
        .insert(BitString::parse("0101").as_bitstr(), 3)
        .unwrap();
    println!("after insert: Access(3) = {}", dyn_wt.access(3));
    let removed = dyn_wt.delete(3);
    println!("deleted back: {removed}");
    assert_eq!(dyn_wt.len(), 7);

    // Every query agrees with the static structure.
    for i in 0..wt.len() {
        assert_eq!(wt.access(i), dyn_wt.access(i));
    }
    println!("static and dynamic agree on all {} positions ✓", wt.len());
}
