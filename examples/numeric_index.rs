//! §6 in action: a dynamic Rank/Select sequence over 64-bit integers whose
//! working alphabet is unknown in advance and tiny compared to the universe.
//!
//! A classic dynamic Wavelet Tree would need the universe fixed up front
//! (depth 64 or a full rebuild on alphabet change); the randomized Wavelet
//! Tree hashes values with an invertible multiplicative permutation and
//! stays O(log |Σ|) deep with high probability.
//!
//! Run with `cargo run --release --example numeric_index`.

use wavelet_trie::hashed::unhashed_height;
use wavelet_trie::RandomizedWaveletTree;
use wt_bits::SpaceUsage;
use wt_workloads::{power_comb, small_alphabet_u64};

fn main() {
    // 100k measurements drawn from ~50 sensor ids scattered in u64 space.
    let n = 100_000;
    let values = small_alphabet_u64(n, 50, 64, 7);

    let mut idx = RandomizedWaveletTree::new(64, 0xFEED);
    let t0 = std::time::Instant::now();
    for &v in &values {
        idx.push(v);
    }
    println!(
        "indexed {n} u64s in {:.1} ms; |Σ| = {}, trie height = {} (log|Σ| ≈ {:.1}, log u = 64)",
        t0.elapsed().as_secs_f64() * 1e3,
        idx.distinct_len(),
        idx.height(),
        (idx.distinct_len() as f64).log2()
    );
    println!(
        "space: {} KiB vs {} KiB for a plain Vec<u64>",
        idx.size_bits() / 8192,
        n * 64 / 8192
    );

    // Point queries.
    let x = values[12345];
    println!("\nvalue {x:#018x}:");
    println!("  count          = {}", idx.count(x));
    println!("  rank before 50k = {}", idx.rank(x, 50_000));
    println!("  100th occurrence at {:?}", idx.select(x, 99));

    // Updates anywhere, values never seen before, no rebuild.
    idx.insert(0xDEAD_BEEF_0BAD_F00D, 777);
    assert_eq!(idx.get(777), 0xDEAD_BEEF_0BAD_F00D);
    let gone = idx.remove(777);
    println!("\ninserted + removed unseen value {gone:#018x} at position 777");

    // The pathological comb: unhashed depth ~64 vs hashed ~O(log |Σ|).
    let comb = power_comb(64);
    let mut hashed = RandomizedWaveletTree::new(64, 42);
    for &v in &comb {
        hashed.push(v);
    }
    println!(
        "\npower-of-two comb (64 values): unhashed height = {}, hashed height = {}",
        unhashed_height(&comb, 64),
        hashed.height()
    );
}
